//! The database: named tables, named sets (predicate functions like
//! `isrequest`), and SQL query execution.

use crate::error::{Error, Result};
use crate::expr::{EvalContext, Expr, SetContext};
use crate::parser::{parse_query, Projection, Query, SelectItem, TableRef};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::symbol::Sym;
use crate::value::Value;
use std::collections::HashMap;

/// A named set of values, usable in expressions as `name(x)`.
pub type NamedSet = Vec<Value>;

/// An in-memory relational database.
///
/// Holds named [`Relation`]s and named sets, executes the SQL subset of
/// [`crate::parser`], and exposes the emptiness checks the paper's
/// invariants are written as (`[Select …] = empty`).
#[derive(Default)]
pub struct Database {
    tables: HashMap<Sym, Relation>,
    sets: SetContext,
}

impl Database {
    /// Empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Create an empty table with the given columns.
    pub fn create_table<I, S>(&mut self, name: &str, cols: I) -> Result<()>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let sym = Sym::intern(name);
        if self.tables.contains_key(&sym) {
            return Err(Error::TableExists(name.to_string()));
        }
        self.tables.insert(sym, Relation::new(Schema::new(cols)?));
        Ok(())
    }

    /// Register (or replace) a relation under `name`.
    pub fn put_table(&mut self, name: &str, rel: Relation) {
        self.tables.insert(Sym::intern(name), rel);
    }

    /// Remove a table, returning it if present.
    pub fn drop_table(&mut self, name: &str) -> Option<Relation> {
        self.tables.remove(&Sym::intern(name))
    }

    /// Look up a table.
    pub fn table(&self, name: &str) -> Result<&Relation> {
        self.tables
            .get(&Sym::intern(name))
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))
    }

    /// Names of all tables (sorted, for deterministic reports).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.keys().map(|s| s.to_string()).collect();
        names.sort();
        names
    }

    /// Insert one row into `name`.
    pub fn insert(&mut self, name: &str, row: &[Value]) -> Result<()> {
        let sym = Sym::intern(name);
        let rel = self
            .tables
            .get_mut(&sym)
            .ok_or_else(|| Error::NoSuchTable(name.to_string()))?;
        rel.push_row(row)
    }

    /// Define a named set usable as `name(x)` in expressions.
    pub fn define_set<I: IntoIterator<Item = Value>>(&mut self, name: &str, values: I) {
        self.sets.define(name, values);
    }

    /// The evaluation context (named sets) of this database.
    pub fn context(&self) -> &dyn EvalContext {
        &self.sets
    }

    /// Parse and execute a query. `CREATE TABLE … AS` stores and also
    /// returns the result.
    pub fn query(&mut self, sql: &str) -> Result<Relation> {
        let q = parse_query(sql)?;
        self.execute(&q)
    }

    /// Execute a parsed query.
    pub fn execute(&mut self, q: &Query) -> Result<Relation> {
        match q {
            Query::Select {
                distinct,
                projection,
                from,
                predicate,
                order_by,
            } => {
                let count = matches!(projection, Projection::CountStar);
                let items = match projection {
                    Projection::Star | Projection::CountStar => None,
                    Projection::Columns(items) | Projection::GroupCount(items) => {
                        Some(items.as_slice())
                    }
                };
                let mut rel = self.execute_select(items, from, predicate.as_ref())?;
                if *distinct {
                    rel = rel.distinct();
                }
                if count {
                    // COUNT(*): a single-cell relation named `count`.
                    let mut out = Relation::with_columns(["count"])?;
                    out.push_row(&[Value::Int(rel.len() as i64)])?;
                    return Ok(out);
                }
                if matches!(projection, Projection::GroupCount(_)) {
                    rel = group_count(&rel)?;
                }
                if !order_by.is_empty() {
                    rel = order_rows(&rel, order_by)?;
                }
                Ok(rel)
            }
            Query::CreateTableAs { name, query } => {
                let rel = self.execute(query)?;
                self.tables.insert(*name, rel.clone());
                Ok(rel)
            }
            Query::Insert { table, values } => {
                let rel = self
                    .tables
                    .get_mut(table)
                    .ok_or_else(|| Error::NoSuchTable(table.to_string()))?;
                rel.push_row(values)?;
                // Return the inserted row, SQL-RETURNING style.
                let mut out = Relation::new(rel.schema().clone());
                out.push_row(values)?;
                Ok(out)
            }
            Query::Delete { table, predicate } => {
                let rel = self
                    .tables
                    .get(table)
                    .ok_or_else(|| Error::NoSuchTable(table.to_string()))?;
                let (kept, deleted) = match predicate {
                    None => (Relation::new(rel.schema().clone()), rel.clone()),
                    Some(p) => {
                        let bound = p.bind(rel.schema())?;
                        let mut kept = Relation::new(rel.schema().clone());
                        let mut deleted = Relation::new(rel.schema().clone());
                        for r in rel.rows() {
                            if bound.eval_bool(r, &self.sets)? {
                                deleted.push_row_unchecked(r);
                            } else {
                                kept.push_row_unchecked(r);
                            }
                        }
                        (kept, deleted)
                    }
                };
                self.tables.insert(*table, kept);
                Ok(deleted)
            }
        }
    }

    /// The paper's invariant form: `[Select …] = empty`. Returns `Ok(rel)`
    /// where callers treat a non-empty `rel` as the violation witness.
    pub fn check_empty(&mut self, sql: &str) -> Result<Relation> {
        self.query(sql)
    }

    fn execute_select(
        &self,
        items: Option<&[SelectItem]>,
        from: &[TableRef],
        predicate: Option<&Expr>,
    ) -> Result<Relation> {
        if from.is_empty() {
            return Err(Error::SchemaMismatch("FROM list is empty".into()));
        }
        // Resolve FROM tables.
        let mut rels: Vec<&Relation> = Vec::with_capacity(from.len());
        for tr in from {
            rels.push(
                self.tables
                    .get(&tr.table)
                    .ok_or_else(|| Error::NoSuchTable(tr.table.to_string()))?,
            );
        }

        // Combined column space: (alias, column) pairs in table order with
        // running offsets into the concatenated row.
        struct ColInfo {
            alias: Sym,
            name: Sym,
            offset: usize,
        }
        let mut cols: Vec<ColInfo> = Vec::new();
        let mut offset = 0;
        for (ti, tr) in from.iter().enumerate() {
            for (ci, &c) in rels[ti].schema().columns().iter().enumerate() {
                cols.push(ColInfo {
                    alias: tr.alias,
                    name: c,
                    offset: offset + ci,
                });
            }
            offset += rels[ti].arity();
        }
        let total_arity = offset;

        // Name resolution: "col" (must be unambiguous) or "alias.col".
        let resolve_name = |name: Sym| -> Result<Option<usize>> {
            let s = name.as_str();
            if let Some(dot) = s.find('.') {
                let (a, c) = (Sym::intern(&s[..dot]), Sym::intern(&s[dot + 1..]));
                let hits: Vec<usize> = cols
                    .iter()
                    .filter(|ci| ci.alias == a && ci.name == c)
                    .map(|ci| ci.offset)
                    .collect();
                return match hits.len() {
                    0 => Ok(None),
                    1 => Ok(Some(hits[0])),
                    _ => Err(Error::AmbiguousColumn(s.to_string())),
                };
            }
            let hits: Vec<usize> = cols
                .iter()
                .filter(|ci| ci.name == name)
                .map(|ci| ci.offset)
                .collect();
            match hits.len() {
                0 => Ok(None),
                1 => Ok(Some(hits[0])),
                _ => Err(Error::AmbiguousColumn(s.to_string())),
            }
        };

        // Bind predicate against the combined space.
        let bound = match predicate {
            Some(e) => Some(e.bind_with(&mut |n| resolve_name(n))?),
            None => None,
        };

        // Output columns.
        let out_indices: Vec<usize>;
        let out_names: Vec<String>;
        match items {
            None => {
                out_indices = (0..total_arity).collect();
                // Qualify duplicated names so the output schema is valid.
                let mut name_counts: HashMap<Sym, usize> = HashMap::new();
                for ci in &cols {
                    *name_counts.entry(ci.name).or_insert(0) += 1;
                }
                out_names = cols
                    .iter()
                    .map(|ci| {
                        if name_counts[&ci.name] > 1 {
                            format!("{}.{}", ci.alias, ci.name)
                        } else {
                            ci.name.to_string()
                        }
                    })
                    .collect();
            }
            Some(list) => {
                let mut idx = Vec::with_capacity(list.len());
                let mut names = Vec::with_capacity(list.len());
                for it in list {
                    let lookup = match it.qualifier {
                        Some(q) => Sym::intern(&format!("{}.{}", q, it.column)),
                        None => it.column,
                    };
                    match resolve_name(lookup)? {
                        Some(off) => idx.push(off),
                        None => {
                            return Err(Error::NoSuchColumn(
                                lookup.to_string(),
                                "select list".to_string(),
                            ))
                        }
                    }
                    names.push(it.column.to_string());
                }
                // Dedup output names (repeat → name#k).
                let mut seen: HashMap<String, usize> = HashMap::new();
                out_names = names
                    .into_iter()
                    .map(|n| {
                        let k = seen.entry(n.clone()).or_insert(0);
                        let out = if *k == 0 {
                            n.clone()
                        } else {
                            format!("{n}#{k}")
                        };
                        *k += 1;
                        out
                    })
                    .collect();
                out_indices = idx;
            }
        }

        let mut out = Relation::new(Schema::new(out_names)?);

        // Nested-loop cross product with on-the-fly predicate evaluation
        // and projection: never materialises the full product.
        let mut combined: Vec<Value> = vec![Value::Null; total_arity];
        let mut proj: Vec<Value> = vec![Value::Null; out_indices.len()];
        let mut cursors = vec![0usize; from.len()];
        if rels.iter().any(|r| r.is_empty()) {
            return Ok(out);
        }
        'outer: loop {
            // Assemble the combined row.
            let mut off = 0;
            for (ti, rel) in rels.iter().enumerate() {
                let row = rel.row(cursors[ti]);
                combined[off..off + row.len()].copy_from_slice(row);
                off += row.len();
            }
            let keep = match &bound {
                Some(p) => p.eval_bool(&combined, &self.sets)?,
                None => true,
            };
            if keep {
                for (k, &i) in out_indices.iter().enumerate() {
                    proj[k] = combined[i];
                }
                out.push_row_unchecked(&proj);
            }
            // Advance the odometer.
            let mut ti = from.len();
            loop {
                if ti == 0 {
                    break 'outer;
                }
                ti -= 1;
                cursors[ti] += 1;
                if cursors[ti] < rels[ti].len() {
                    break;
                }
                cursors[ti] = 0;
            }
        }
        Ok(out)
    }
}

/// Aggregate a projected relation into `(group columns…, count)` rows,
/// in first-occurrence group order.
fn group_count(rel: &Relation) -> Result<Relation> {
    let mut counts: HashMap<Vec<Value>, i64> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    for r in rel.rows() {
        let key = r.to_vec();
        match counts.get_mut(&key) {
            Some(c) => *c += 1,
            None => {
                counts.insert(key.clone(), 1);
                order.push(key);
            }
        }
    }
    let mut cols: Vec<String> = rel
        .schema()
        .columns()
        .iter()
        .map(|c| c.to_string())
        .collect();
    cols.push("count".to_string());
    let mut out = Relation::new(crate::Schema::new(cols)?);
    for key in order {
        let mut row = key.clone();
        row.push(Value::Int(counts[&key]));
        out.push_row_unchecked(&row);
    }
    Ok(out)
}

/// Sort a relation by `ORDER BY` keys (each with a descending flag).
fn order_rows(rel: &Relation, keys: &[(SelectItem, bool)]) -> Result<Relation> {
    let idx: Vec<(usize, bool)> = keys
        .iter()
        .map(|(item, desc)| {
            let name = match item.qualifier {
                Some(q) => Sym::intern(&format!("{}.{}", q, item.column)),
                None => item.column,
            };
            rel.schema()
                .index_of(name)
                .map(|i| (i, *desc))
                .ok_or_else(|| Error::NoSuchColumn(name.to_string(), "order by".to_string()))
        })
        .collect::<Result<_>>()?;
    let mut order: Vec<usize> = (0..rel.len()).collect();
    order.sort_by(|&a, &b| {
        for &(i, desc) in &idx {
            let cmp = rel.row(a)[i].cmp(&rel.row(b)[i]);
            let cmp = if desc { cmp.reverse() } else { cmp };
            if cmp != std::cmp::Ordering::Equal {
                return cmp;
            }
        }
        std::cmp::Ordering::Equal
    });
    let mut out = Relation::new(rel.schema().clone());
    out.reserve_rows(rel.len());
    for i in order {
        out.push_row_unchecked(rel.row(i));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.create_table("D", ["inmsg", "dirst", "dirpv"]).unwrap();
        for (m, s, p) in [
            ("readex", "SI", "one"),
            ("readex", "I", "zero"),
            ("data", "Busy-d", "zero"),
            ("idone", "Busy-s", "one"),
        ] {
            db.insert("D", &[v(m), v(s), v(p)]).unwrap();
        }
        db
    }

    #[test]
    fn simple_select_where() {
        let mut db = sample_db();
        let r = db
            .query(r#"select inmsg, dirpv from D where dirst = "SI""#)
            .unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.row(0), &[v("readex"), v("one")]);
    }

    #[test]
    fn select_star() {
        let mut db = sample_db();
        let r = db.query("select * from D").unwrap();
        assert_eq!(r.len(), 4);
        assert_eq!(r.arity(), 3);
    }

    #[test]
    fn select_without_where_keeps_all() {
        let mut db = sample_db();
        let r = db.query("select inmsg from D").unwrap();
        assert_eq!(r.len(), 4);
    }

    #[test]
    fn distinct_dedups() {
        let mut db = sample_db();
        db.insert("D", &[v("readex"), v("SI"), v("one")]).unwrap();
        let all = db
            .query("select inmsg from D where inmsg = readex")
            .unwrap();
        assert_eq!(all.len(), 3);
        let d = db
            .query("select distinct inmsg from D where inmsg = readex")
            .unwrap();
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn self_join_with_aliases() {
        let mut db = sample_db();
        // Pairs of rows with the same presence-vector encoding.
        let r = db
            .query(
                "select d1.inmsg, d2.inmsg from D d1, D d2 \
                 where d1.dirpv = d2.dirpv and not d1.inmsg = d2.inmsg",
            )
            .unwrap();
        // zero: (readex/I, data/Busy-d) both directions; one: (readex/SI, idone) both.
        assert_eq!(r.len(), 4);
        assert_eq!(r.schema().columns()[1].as_str(), "inmsg#1");
    }

    #[test]
    fn ambiguous_unqualified_column_errors() {
        let mut db = sample_db();
        let err = db
            .query("select inmsg from D d1, D d2 where dirst = SI")
            .unwrap_err();
        assert!(matches!(err, Error::AmbiguousColumn(_)));
    }

    #[test]
    fn create_table_as_stores_result() {
        let mut db = sample_db();
        db.query(r#"create table busy as select * from D where dirst = "Busy-d""#)
            .unwrap();
        assert_eq!(db.table("busy").unwrap().len(), 1);
        // And it is queryable.
        let r = db.query("select inmsg from busy").unwrap();
        assert_eq!(r.row(0), &[v("data")]);
    }

    #[test]
    fn named_set_predicates_in_queries() {
        let mut db = sample_db();
        db.define_set("isrequest", [v("readex"), v("wb")]);
        let r = db
            .query("select inmsg from D where isrequest(inmsg)")
            .unwrap();
        assert_eq!(r.len(), 2);
        let err = db
            .query("select inmsg from D where nosuch(inmsg)")
            .unwrap_err();
        assert!(matches!(err, Error::NoSuchSet(_)));
    }

    #[test]
    fn empty_check_shape() {
        // The paper's invariant style: query must return the empty set.
        let mut db = sample_db();
        let r = db
            .check_empty(r#"select dirst, dirpv from D where dirst = "MESI" and not dirpv = one"#)
            .unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn missing_table_and_column_errors() {
        let mut db = sample_db();
        assert!(matches!(
            db.query("select x from NOPE"),
            Err(Error::NoSuchTable(_))
        ));
        assert!(matches!(
            db.query("select nocol from D"),
            Err(Error::NoSuchColumn(..))
        ));
    }

    #[test]
    fn duplicate_create_rejected_but_put_replaces() {
        let mut db = sample_db();
        assert!(matches!(
            db.create_table("D", ["x"]),
            Err(Error::TableExists(_))
        ));
        let rel = Relation::with_columns(["x"]).unwrap();
        db.put_table("D", rel);
        assert_eq!(db.table("D").unwrap().arity(), 1);
    }

    #[test]
    fn cross_join_of_empty_table_is_empty() {
        let mut db = sample_db();
        db.create_table("E", ["q"]).unwrap();
        let r = db.query("select inmsg, q from D, E").unwrap();
        assert!(r.is_empty());
    }

    #[test]
    fn qualified_column_in_predicate_of_single_table() {
        let mut db = sample_db();
        let r = db
            .query("select inmsg from D d where d.dirst = SI")
            .unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn count_star() {
        let mut db = sample_db();
        db.define_set("isrequest", [v("readex")]);
        let r = db
            .query("select count(*) from D where isrequest(inmsg)")
            .unwrap();
        assert_eq!(r.arity(), 1);
        assert_eq!(r.row(0)[0], Value::Int(2));
        let all = db.query("select count(*) from D").unwrap();
        assert_eq!(all.row(0)[0], Value::Int(4));
        let distinct = db
            .query("select distinct count(*) from D where inmsg = readex")
            .unwrap();
        assert_eq!(distinct.row(0)[0], Value::Int(2));
    }

    #[test]
    fn group_by_counts() {
        let mut db = sample_db();
        let r = db
            .query("select inmsg, count(*) from D group by inmsg order by count desc, inmsg")
            .unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.schema().columns()[1].as_str(), "count");
        // readex appears twice, data and idone once each.
        assert_eq!(r.row(0), &[v("readex"), Value::Int(2)]);
        assert_eq!(r.len(), 3);
        // Group columns must match the GROUP BY list.
        assert!(db
            .query("select inmsg, count(*) from D group by dirst")
            .is_err());
        // GROUP BY required with a mixed projection.
        assert!(db.query("select inmsg, count(*) from D").is_err());
        // Multi-column grouping.
        let r = db
            .query("select inmsg, dirst, count(*) from D group by inmsg, dirst")
            .unwrap();
        assert_eq!(r.len(), 4);
        assert!(r.rows().all(|row| row[2] == Value::Int(1)));
    }

    #[test]
    fn order_by_sorts() {
        let mut db = sample_db();
        let r = db
            .query("select inmsg, dirst from D order by inmsg")
            .unwrap();
        let col: Vec<String> = r.rows().map(|row| row[0].to_string()).collect();
        let mut sorted = col.clone();
        sorted.sort();
        assert_eq!(col, sorted);
        let r = db.query("select inmsg from D order by inmsg desc").unwrap();
        assert_eq!(r.row(0)[0], v("readex"));
        // Multi-key with mixed direction.
        let r = db
            .query("select inmsg, dirst from D order by inmsg asc, dirst desc")
            .unwrap();
        assert_eq!(r.len(), 4);
        // Unknown key errors.
        assert!(db.query("select inmsg from D order by zzz").is_err());
    }

    #[test]
    fn insert_and_delete() {
        let mut db = sample_db();
        let inserted = db
            .query(r#"insert into D values ("wb", "MESI", "one")"#)
            .unwrap();
        assert_eq!(inserted.len(), 1);
        assert_eq!(db.table("D").unwrap().len(), 5);
        let deleted = db.query(r#"delete from D where inmsg = "wb""#).unwrap();
        assert_eq!(deleted.len(), 1);
        assert_eq!(db.table("D").unwrap().len(), 4);
        // Delete everything.
        let deleted = db.query("delete from D").unwrap();
        assert_eq!(deleted.len(), 4);
        assert!(db.table("D").unwrap().is_empty());
        // Arity mismatch rejected.
        assert!(db.query(r#"insert into D values ("only-one")"#).is_err());
        assert!(db.query("delete from NOPE").is_err());
    }

    #[test]
    fn table_names_sorted() {
        let mut db = sample_db();
        db.create_table("A", ["x"]).unwrap();
        assert_eq!(db.table_names(), vec!["A".to_string(), "D".to_string()]);
    }
}
