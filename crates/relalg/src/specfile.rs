//! The textual *database input* format.
//!
//! Section 1 of the paper: "The approach is used in a push-button
//! manner by creating a database input comprised of three components —
//! i) database table schema describing the individual controller table
//! columns and their legal values, ii) SQL constraints specifying the
//! behavior of the controllers, and iii) protocol static checks in
//! terms of SQL constraints and table operations."
//!
//! This module parses exactly that input as a plain-text file:
//!
//! ```text
//! # comment
//! table Fig3
//!
//! input  inmsg = readex, data, idone
//! input  dirst = I, SI, "Busy-sd", "Busy-s", "Busy-d"
//! output remmsg = sinv, NULL
//!
//! constrain dirpv: dirst = I ? dirpv = zero : true
//! constrain remmsg: inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL
//!
//! check pv-consistency: select dirst, dirpv from Fig3 where dirst = "I" and not dirpv = "zero"
//! ```
//!
//! * `table NAME` — the table being specified (exactly one).
//! * `input` / `output` — a column with its column table (legal values;
//!   `NULL` is the don't-care/no-op marker).
//! * `constrain COL: EXPR` — the column constraint (columns without one
//!   are unconstrained, i.e. `true`).
//! * `check NAME: SELECT …` — a static check: the query must return the
//!   empty set once the table is generated.
//!
//! Three optional directives describe the spec's *message flow* for the
//! linter (`ccsql lint`) and the flow analysis (`ccsql flows`); they
//! have no effect on table generation:
//!
//! * `flow COL, COL, …` — declares message columns. Input message
//!   columns receive messages, output message columns emit them. Each
//!   item may carry *role* slots: `flow COL(SRC, DEST)`, where `SRC` /
//!   `DEST` is either a declared column (the role is read per row from
//!   that column) or one of the literals `local` / `home` / `remote`
//!   (the role is constant for every message in the column). Items
//!   without role slots keep the `"*"` wildcard semantics.
//! * `extern send m1, m2, …` — messages the environment (everything
//!   outside the specs being linted) may send, so an input column
//!   accepting them is not a dead input.
//! * `extern recv m1, m2, …` — messages the environment consumes, so
//!   an output column emitting them is not unsendable.
//!
//! Four further optional directives give the spec an *operational*
//! reading — enough for a generic transaction machine (`ccsql zoo` /
//! the spec-level model checker in `ccsql-mc`) to execute the solved
//! table as a closed system. Like `flow`/`extern`, they have no effect
//! on table generation:
//!
//! * `machine COL = NXTCOL, init v1 v2 …[, stable v1 v2 …][, map X -> Y]…`
//!   — declares `COL` a controller *state variable* whose next value
//!   each row gives in output column `NXTCOL` (`NULL` = unchanged). The
//!   `init` clause lists the values exploration may start from; the
//!   `stable` clause (meaningful on the first `machine` directive, the
//!   *primary* state variable) lists the states in which a transaction
//!   is complete. `map` resolves transient next-values that are not
//!   themselves states: `map MESI -> I` rewrites them, `map inc -> +1`
//!   / `map dec -> -1` step along the declared value order (saturating
//!   at the ends), and `map MESI -> init` closes the transaction by
//!   resetting *every* state variable to its first `init` value.
//! * `multicast COL, …` — emissions in these output columns address
//!   many peers at once (e.g. one `sinv` invalidating every sharer), so
//!   the machine grants the environment more than one response credit.
//! * `complete COL = m1, m2, …` — delivering one of these messages to
//!   the `local` role completes the requester's transaction even when
//!   the controller itself stays busy (e.g. serving a pended request).
//! * `bounce COL = m1, m2, …` — delivering one of these messages to the
//!   `local` role *rejects* the request: the requester reposts it at
//!   the next higher value of its request-attribute column (priority
//!   escalation on retry).
//!
//! Every parse error carries the 1-based line/column it occurred at
//! ([`crate::error::Span`]); constraint-expression errors are re-anchored
//! from the expression substring to the real position in the file.

use crate::error::{Error, Result, Span};
use crate::expr::Expr;
use crate::parser::parse_expr;
use crate::solver::{ColumnDef, ColumnRole, TableSpec};
use crate::value::Value;

/// A parsed database input: the table specification plus its static
/// checks and the source/flow metadata the linter consumes.
pub struct SpecFile {
    /// The table specification (schema + column tables + constraints).
    pub spec: TableSpec,
    /// Static checks: `(name, sql)` pairs whose queries must be empty.
    pub checks: Vec<(String, String)>,
    /// Source spans and message-flow declarations.
    pub meta: SpecMeta,
}

/// One item of a `flow` directive: a message column, optionally tagged
/// with the source and destination *role* of every message it carries.
/// A role slot is either a declared column name (the role is read per
/// row from that column) or a role literal (`local` / `home` /
/// `remote`); `None` means the `"*"` wildcard (role unknown).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowColumn {
    /// The message column.
    pub column: String,
    /// Source-role slot (column name or role literal).
    pub src: Option<String>,
    /// Destination-role slot (column name or role literal).
    pub dest: Option<String>,
}

impl FlowColumn {
    /// A role-less flow column (wildcard roles).
    pub fn bare(column: &str) -> FlowColumn {
        FlowColumn {
            column: column.to_string(),
            src: None,
            dest: None,
        }
    }
}

/// The role literals a `flow` role slot may use instead of a column.
pub const ROLE_LITERALS: [&str; 3] = ["local", "home", "remote"];

/// How a transient next-state value resolves to a state-variable value
/// (the `map` clauses of a `machine` directive).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineStep {
    /// Rewrite to this (in-domain) value.
    To(Value),
    /// Step to the next value in the column's declared order
    /// (saturating at the last value).
    Up,
    /// Step to the previous value in the declared order (saturating at
    /// the first value).
    Down,
    /// Close the transaction: every machine variable resets to its
    /// first `init` value.
    Reset,
}

/// One `machine` directive: a state variable of the operational reading
/// of the spec (see the module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineVar {
    /// The input column holding the variable's current value.
    pub column: String,
    /// The output column giving its next value (`NULL` = unchanged).
    pub next: String,
    /// Values exploration may start from (first = the reset value).
    pub init: Vec<Value>,
    /// States in which a transaction is complete (primary variable).
    pub stable: Vec<Value>,
    /// Transient next-value resolutions, in declaration order.
    pub maps: Vec<(Value, MachineStep)>,
}

/// Source metadata of a parsed spec file: where columns and constraints
/// were declared, plus the optional message-flow directives. Purely
/// informational — table generation ignores it; the linter uses it to
/// point diagnostics at real source positions and to run flow checks.
#[derive(Debug, Clone, Default)]
pub struct SpecMeta {
    /// Declaration position per column, in declaration order.
    pub column_spans: Vec<(String, Span)>,
    /// Position of each constraint's expression, per column.
    pub constraint_spans: Vec<(String, Span)>,
    /// Columns declared as message columns via `flow COL, …`.
    pub flow_columns: Vec<FlowColumn>,
    /// Messages the environment may send (`extern send …`).
    pub extern_send: Vec<String>,
    /// Messages the environment consumes (`extern recv …`).
    pub extern_recv: Vec<String>,
    /// State variables of the operational reading (`machine …`), in
    /// declaration order; the first is the primary state variable.
    pub machines: Vec<MachineVar>,
    /// Output columns whose emissions address many peers (`multicast`).
    pub multicast: Vec<String>,
    /// `(column, messages)` whose delivery to `local` completes a
    /// transaction (`complete COL = …`).
    pub complete_msgs: Vec<(String, Vec<Value>)>,
    /// `(column, messages)` whose delivery to `local` bounces the
    /// request to a higher priority (`bounce COL = …`).
    pub bounce_msgs: Vec<(String, Vec<Value>)>,
}

impl SpecMeta {
    /// Where column `name` was declared ([`Span::UNKNOWN`] if absent).
    pub fn column_span(&self, name: &str) -> Span {
        self.column_spans
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(Span::UNKNOWN)
    }

    /// Where column `name`'s constraint expression starts
    /// ([`Span::UNKNOWN`] if the column has no `constrain` directive).
    pub fn constraint_span(&self, name: &str) -> Span {
        self.constraint_spans
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| *s)
            .unwrap_or(Span::UNKNOWN)
    }
}

/// Parse a database-input file.
pub fn parse_specfile(text: &str) -> Result<SpecFile> {
    let mut table_name: Option<String> = None;
    // (name, values, role) in declaration order.
    let mut columns: Vec<(String, Vec<Value>, ColumnRole)> = Vec::new();
    let mut constraints: Vec<(String, Expr)> = Vec::new();
    let mut checks: Vec<(String, String)> = Vec::new();
    let mut meta = SpecMeta::default();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // 1-based column of a substring of `raw` (same allocation).
        let col_of = |sub: &str| (sub.as_ptr() as usize - raw.as_ptr() as usize) as u32 + 1;
        let err = |msg: String| Error::Parse {
            at: Span::new(lineno as u32 + 1, col_of(line)),
            msg,
        };
        let (keyword, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(format!("expected a directive, found {line:?}")))?;
        let rest = rest.trim();
        match keyword {
            "table" => {
                if table_name.is_some() {
                    return Err(err("duplicate `table` directive".into()));
                }
                table_name = Some(rest.to_string());
            }
            "input" | "output" => {
                let (name, values) = rest
                    .split_once('=')
                    .ok_or_else(|| err(format!("expected `NAME = v1, v2, …`, found {rest:?}")))?;
                let name = name.trim();
                if name.is_empty() {
                    return Err(err("empty column name".into()));
                }
                let role = if keyword == "input" {
                    ColumnRole::Input
                } else {
                    ColumnRole::Output
                };
                let vals: Vec<Value> = values
                    .split(',')
                    .map(|v| parse_value(v.trim()))
                    .collect::<Result<_>>()
                    .map_err(|e| err(format!("bad value list: {e}")))?;
                if vals.is_empty() {
                    return Err(err(format!("column {name} has no values")));
                }
                meta.column_spans
                    .push((name.to_string(), Span::new(lineno as u32 + 1, col_of(name))));
                columns.push((name.to_string(), vals, role));
            }
            "constrain" => {
                let (col, expr) = rest
                    .split_once(':')
                    .ok_or_else(|| err("expected `constrain COL: EXPR`".into()))?;
                let expr = expr.trim();
                let expr_at = Span::new(lineno as u32 + 1, col_of(expr));
                // Errors inside the expression are re-anchored from the
                // substring's own (1-based, single-line) position to the
                // expression's position in this file.
                let e = parse_expr(expr).map_err(|e| match e {
                    Error::Parse { at, msg } => Error::Parse {
                        at: at.rebase(expr_at.line, expr_at.col),
                        msg: format!("bad constraint for {}: {msg}", col.trim()),
                    },
                    other => err(format!("bad constraint for {}: {other}", col.trim())),
                })?;
                meta.constraint_spans
                    .push((col.trim().to_string(), expr_at));
                constraints.push((col.trim().to_string(), e));
            }
            "flow" => {
                for item in split_flow_items(rest).into_iter().map(str::trim) {
                    if item.is_empty() {
                        return Err(err("expected `flow COL, COL(SRC, DEST), …`".into()));
                    }
                    meta.flow_columns.push(parse_flow_item(item).map_err(err)?);
                }
            }
            "extern" => {
                let (dir, msgs) = rest
                    .split_once(char::is_whitespace)
                    .ok_or_else(|| err("expected `extern send|recv m1, m2, …`".into()))?;
                let list = match dir {
                    "send" => &mut meta.extern_send,
                    "recv" => &mut meta.extern_recv,
                    other => {
                        return Err(err(format!(
                            "expected `extern send` or `extern recv`, found `extern {other}`"
                        )))
                    }
                };
                for m in msgs.split(',').map(str::trim) {
                    if m.is_empty() {
                        return Err(err("empty message name in `extern` list".into()));
                    }
                    list.push(m.to_string());
                }
            }
            "check" => {
                let (name, sql) = rest
                    .split_once(':')
                    .ok_or_else(|| err("expected `check NAME: SELECT …`".into()))?;
                checks.push((name.trim().to_string(), sql.trim().to_string()));
            }
            "machine" => {
                meta.machines.push(parse_machine_item(rest).map_err(err)?);
            }
            "multicast" => {
                for c in rest.split(',').map(str::trim) {
                    if c.is_empty() {
                        return Err(err("empty column name in `multicast` list".into()));
                    }
                    meta.multicast.push(c.to_string());
                }
            }
            "complete" | "bounce" => {
                let (col, vals) = rest.split_once('=').ok_or_else(|| {
                    err(format!(
                        "expected `{keyword} COL = m1, m2, …`, found {rest:?}"
                    ))
                })?;
                let col = col.trim();
                if col.is_empty() {
                    return Err(err(format!("`{keyword}` needs a column name")));
                }
                let vals: Vec<Value> = vals
                    .split(',')
                    .map(|v| parse_value(v.trim()))
                    .collect::<Result<_>>()
                    .map_err(|e| err(format!("bad `{keyword}` value list: {e}")))?;
                let list = if keyword == "complete" {
                    &mut meta.complete_msgs
                } else {
                    &mut meta.bounce_msgs
                };
                list.push((col.to_string(), vals));
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }

    let name = table_name.ok_or(Error::Parse {
        at: Span::UNKNOWN,
        msg: "missing `table NAME` directive".into(),
    })?;
    let mut spec = TableSpec::new(&name);
    for (cname, values, role) in columns {
        let constraint = constraints
            .iter()
            .find(|(c, _)| *c == cname)
            .map(|(_, e)| e.clone())
            .unwrap_or(Expr::True);
        let def = match role {
            ColumnRole::Input => ColumnDef::input(&cname, values, constraint),
            ColumnRole::Output => ColumnDef::output(&cname, values, constraint),
        };
        spec.push(def);
    }
    // A constraint or flow declaration naming an undeclared column is a
    // spec bug.
    for (c, _) in &constraints {
        if !spec.columns.iter().any(|col| col.name.as_str() == c) {
            return Err(Error::BadSpec(format!(
                "constraint for undeclared column {c}"
            )));
        }
    }
    let declared = |c: &str| spec.columns.iter().any(|col| col.name.as_str() == c);
    for fc in &meta.flow_columns {
        if !declared(&fc.column) {
            return Err(Error::BadSpec(format!(
                "`flow` declares undeclared column {}",
                fc.column
            )));
        }
        // A role slot must resolve: either a declared column holding the
        // role per row, or one of the fixed role literals.
        for role in [&fc.src, &fc.dest].into_iter().flatten() {
            if !declared(role) && !ROLE_LITERALS.contains(&role.as_str()) {
                return Err(Error::BadSpec(format!(
                    "`flow {}({}, {})`: role {role:?} is neither a declared column nor one of {}",
                    fc.column,
                    fc.src.as_deref().unwrap_or("?"),
                    fc.dest.as_deref().unwrap_or("?"),
                    ROLE_LITERALS.join("/"),
                )));
            }
        }
    }
    // The operational directives must name declared columns with
    // in-domain values — a `machine` pointing at a typo'd column or an
    // out-of-domain reset value is a spec bug worth rejecting at parse.
    let domain_of = |c: &str| {
        spec.columns
            .iter()
            .find(|col| col.name.as_str() == c)
            .map(|col| col.values.clone())
    };
    for (i, m) in meta.machines.iter().enumerate() {
        let sdom = domain_of(&m.column).ok_or_else(|| {
            Error::BadSpec(format!("`machine` declares undeclared column {}", m.column))
        })?;
        let ndom = domain_of(&m.next).ok_or_else(|| {
            Error::BadSpec(format!(
                "`machine {}`: next column {} is not declared",
                m.column, m.next
            ))
        })?;
        if meta.machines[..i].iter().any(|o| o.column == m.column) {
            return Err(Error::BadSpec(format!(
                "duplicate `machine` directive for column {}",
                m.column
            )));
        }
        for v in m.init.iter().chain(&m.stable) {
            if !sdom.contains(v) {
                return Err(Error::BadSpec(format!(
                    "`machine {}`: value {v} is not in the column's table",
                    m.column
                )));
            }
        }
        for (from, step) in &m.maps {
            if !ndom.contains(from) {
                return Err(Error::BadSpec(format!(
                    "`machine {}`: map source {from} is not a value of {}",
                    m.column, m.next
                )));
            }
            if let MachineStep::To(v) = step {
                if !sdom.contains(v) {
                    return Err(Error::BadSpec(format!(
                        "`machine {}`: map target {v} is not in the column's table",
                        m.column
                    )));
                }
            }
        }
    }
    for c in &meta.multicast {
        if !declared(c) {
            return Err(Error::BadSpec(format!(
                "`multicast` declares undeclared column {c}"
            )));
        }
    }
    for (kw, list) in [
        ("complete", &meta.complete_msgs),
        ("bounce", &meta.bounce_msgs),
    ] {
        for (col, vals) in list {
            let dom = domain_of(col).ok_or_else(|| {
                Error::BadSpec(format!("`{kw}` declares undeclared column {col}"))
            })?;
            for v in vals {
                if !dom.contains(v) {
                    return Err(Error::BadSpec(format!(
                        "`{kw} {col}`: value {v} is not in the column's table"
                    )));
                }
            }
        }
    }
    Ok(SpecFile { spec, checks, meta })
}

/// Split a `flow` directive's item list at top-level commas, so role
/// slots inside `COL(SRC, DEST)` stay attached to their item.
fn split_flow_items(rest: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let (mut depth, mut start) = (0usize, 0usize);
    for (i, ch) in rest.char_indices() {
        match ch {
            '(' => depth += 1,
            ')' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                items.push(&rest[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    items.push(&rest[start..]);
    items
}

/// Parse one `flow` item: `COL` or `COL(SRC, DEST)`.
fn parse_flow_item(item: &str) -> std::result::Result<FlowColumn, String> {
    let Some((name, roles)) = item.split_once('(') else {
        return Ok(FlowColumn::bare(item));
    };
    let roles = roles
        .strip_suffix(')')
        .ok_or_else(|| format!("unterminated role list in flow item {item:?}"))?;
    let (src, dest) = roles
        .split_once(',')
        .ok_or_else(|| format!("expected `COL(SRC, DEST)` in flow item {item:?}"))?;
    let (name, src, dest) = (name.trim(), src.trim(), dest.trim());
    if name.is_empty() || src.is_empty() || dest.is_empty() || dest.contains(',') {
        return Err(format!("expected `COL(SRC, DEST)` in flow item {item:?}"));
    }
    Ok(FlowColumn {
        column: name.to_string(),
        src: Some(src.to_string()),
        dest: Some(dest.to_string()),
    })
}

/// Parse one `machine` directive body:
/// `COL = NXTCOL, init v1 v2 …[, stable v1 v2 …][, map X -> Y]…`.
fn parse_machine_item(rest: &str) -> std::result::Result<MachineVar, String> {
    let mut clauses = rest.split(',').map(str::trim);
    let head = clauses.next().unwrap_or("");
    let (column, next) = head
        .split_once('=')
        .ok_or_else(|| format!("expected `machine COL = NXTCOL, init …`, found {head:?}"))?;
    let (column, next) = (column.trim(), next.trim());
    if column.is_empty() || next.is_empty() {
        return Err(format!(
            "expected `machine COL = NXTCOL, …`, found {head:?}"
        ));
    }
    let mut m = MachineVar {
        column: column.to_string(),
        next: next.to_string(),
        init: Vec::new(),
        stable: Vec::new(),
        maps: Vec::new(),
    };
    let values = |list: &str| -> std::result::Result<Vec<Value>, String> {
        let vals: Vec<Value> = list
            .split_whitespace()
            .map(parse_value)
            .collect::<Result<_>>()
            .map_err(|e| format!("bad value in `machine {column}`: {e}"))?;
        if vals.is_empty() {
            return Err(format!("`machine {column}`: empty value list"));
        }
        Ok(vals)
    };
    for clause in clauses {
        let (kw, body) = clause
            .split_once(char::is_whitespace)
            .ok_or_else(|| format!("bad `machine` clause {clause:?}"))?;
        match kw {
            "init" => m.init = values(body.trim())?,
            "stable" => m.stable = values(body.trim())?,
            "map" => {
                let (from, to) = body
                    .split_once("->")
                    .ok_or_else(|| format!("expected `map X -> Y` in `machine {column}`"))?;
                let from = parse_value(from.trim())
                    .map_err(|e| format!("bad map source in `machine {column}`: {e}"))?;
                let step = match to.trim() {
                    "+1" => MachineStep::Up,
                    "-1" => MachineStep::Down,
                    "init" => MachineStep::Reset,
                    v => MachineStep::To(
                        parse_value(v)
                            .map_err(|e| format!("bad map target in `machine {column}`: {e}"))?,
                    ),
                };
                m.maps.push((from, step));
            }
            other => return Err(format!("unknown `machine` clause keyword {other:?}")),
        }
    }
    if m.init.is_empty() {
        return Err(format!("`machine {column}` needs an `init` clause"));
    }
    Ok(m)
}

/// Parse one value token: `NULL`, a quoted string, an integer, or a
/// bare symbol.
fn parse_value(tok: &str) -> Result<Value> {
    if tok.is_empty() {
        return Err(Error::Parse {
            at: Span::UNKNOWN,
            msg: "empty value".into(),
        });
    }
    if tok.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    if tok.eq_ignore_ascii_case("true") {
        return Ok(Value::Bool(true));
    }
    if tok.eq_ignore_ascii_case("false") {
        return Ok(Value::Bool(false));
    }
    if let Some(stripped) = tok.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        return Ok(Value::sym(stripped));
    }
    if let Ok(n) = tok.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Ok(Value::sym(tok))
}

/// Generate the table from a database input and run its static checks
/// against the result. Returns the generated relation and any failing
/// checks with their witness relations.
pub fn solve_specfile(sf: &SpecFile) -> Result<(crate::Relation, Vec<(String, crate::Relation)>)> {
    solve_specfile_with(sf, true)
}

/// [`solve_specfile`] with compiled constraint evaluation switchable —
/// `compile: false` is the interpreted oracle behind `--no-compile`.
pub fn solve_specfile_with(
    sf: &SpecFile,
    compile: bool,
) -> Result<(crate::Relation, Vec<(String, crate::Relation)>)> {
    let opts = crate::GenOptions {
        mode: crate::GenMode::Incremental,
        compile,
    };
    let (rel, _) = sf
        .spec
        .generate_with(opts, &crate::expr::SetContext::new())?;
    let mut db = crate::Database::new();
    db.put_table(&sf.spec.name, rel.clone());
    let mut failures = Vec::new();
    for (name, sql) in &sf.checks {
        let witnesses = db.query(sql)?;
        if !witnesses.is_empty() {
            failures.push((name.clone(), witnesses));
        }
    }
    Ok((rel, failures))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3_MINI: &str = r#"
# The readex slice of the directory controller, as a database input.
table Fig3

input inmsg = readex, data, idone
input dirst = I, SI, "Busy-sd", "Busy-s", "Busy-d"
input dirpv = zero, one, gone

output remmsg = sinv, NULL
output memmsg = mread, NULL

constrain dirst: inmsg = readex ? dirst in (I, SI) : (inmsg = data ? dirst in ("Busy-sd", "Busy-d") : dirst in ("Busy-sd", "Busy-s"))
constrain dirpv: dirst = I ? dirpv = zero : (dirst = SI ? dirpv in (one, gone) : (inmsg = data and dirst = "Busy-d" ? dirpv = zero : dirpv in (zero, one, gone)))
constrain remmsg: inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL
constrain memmsg: inmsg = readex ? memmsg = mread : memmsg = NULL

check sinv-only-on-shared-readex: select inmsg, dirst, remmsg from Fig3 where remmsg = "sinv" and not dirst = "SI"
check readex-always-reads-memory: select inmsg, memmsg from Fig3 where inmsg = "readex" and memmsg = NULL
"#;

    #[test]
    fn parses_and_solves_the_mini_input() {
        let sf = parse_specfile(FIG3_MINI).unwrap();
        assert_eq!(sf.spec.name, "Fig3");
        assert_eq!(sf.spec.columns.len(), 5);
        assert_eq!(sf.checks.len(), 2);
        let (rel, failures) = solve_specfile(&sf).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        // readex: I + SI×2 = 3; data: Busy-sd×3 + Busy-d×1 = 4;
        // idone: Busy-sd×3 + Busy-s×3 = 6 → 13 rows.
        assert_eq!(rel.len(), 13);
    }

    #[test]
    fn checks_fail_with_witnesses() {
        let bad = FIG3_MINI.replace(
            "check sinv-only-on-shared-readex: select inmsg, dirst, remmsg from Fig3 where remmsg = \"sinv\" and not dirst = \"SI\"",
            "check impossible: select inmsg from Fig3 where inmsg = \"readex\"",
        );
        let sf = parse_specfile(&bad).unwrap();
        let (_, failures) = solve_specfile(&sf).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "impossible");
        assert_eq!(failures[0].1.len(), 3);
    }

    #[test]
    fn error_cases() {
        assert!(parse_specfile("input a = x").is_err()); // no table
        assert!(parse_specfile("table t\ntable u").is_err()); // duplicate
        assert!(parse_specfile("table t\nbogus x").is_err()); // directive
        assert!(parse_specfile("table t\ninput a x, y").is_err()); // no '='
        assert!(parse_specfile("table t\ninput = x").is_err()); // no name
        assert!(parse_specfile("table t\ninput a = x\nconstrain b: true").is_err()); // unknown col
        assert!(parse_specfile("table t\ninput a = x\nconstrain a bad").is_err()); // no ':'
        assert!(parse_specfile("table t\ninput a = x\nconstrain a: ? ?").is_err());
        // bad expr
    }

    #[test]
    fn flow_role_slots_parse_and_validate() {
        let src = "table t\ninput a = x\ninput who = local, home\noutput o = y, NULL\n\
                   flow a(who, home), o";
        let sf = parse_specfile(src).unwrap();
        assert_eq!(
            sf.meta.flow_columns,
            vec![
                FlowColumn {
                    column: "a".into(),
                    src: Some("who".into()),
                    dest: Some("home".into()),
                },
                FlowColumn::bare("o"),
            ]
        );
        // Role slot neither a declared column nor a role literal.
        let bad = "table t\ninput a = x\nflow a(nowhere, home)";
        assert!(parse_specfile(bad).is_err());
        // Malformed role lists.
        assert!(parse_specfile("table t\ninput a = x\nflow a(home, local").is_err());
        assert!(parse_specfile("table t\ninput a = x\nflow a(home)").is_err());
        assert!(parse_specfile("table t\ninput a = x\nflow a(home, local, x)").is_err());
    }

    #[test]
    fn machine_directives_parse_and_validate() {
        let src = "table t\n\
                   input st = I, B\n\
                   input pv = zero, one, gone\n\
                   output nxtst = DONE, B, NULL\n\
                   output nxtpv = inc, dec, NULL\n\
                   output o = m, r, NULL\n\
                   machine st = nxtst, init I, stable I, map DONE -> init\n\
                   machine pv = nxtpv, init zero one, map inc -> +1, map dec -> -1\n\
                   multicast o\n\
                   complete o = m\n\
                   bounce o = r";
        let sf = parse_specfile(src).unwrap();
        assert_eq!(sf.meta.machines.len(), 2);
        let st = &sf.meta.machines[0];
        assert_eq!(st.column, "st");
        assert_eq!(st.next, "nxtst");
        assert_eq!(st.init, vec![Value::sym("I")]);
        assert_eq!(st.stable, vec![Value::sym("I")]);
        assert_eq!(st.maps, vec![(Value::sym("DONE"), MachineStep::Reset)]);
        let pv = &sf.meta.machines[1];
        assert_eq!(pv.init, vec![Value::sym("zero"), Value::sym("one")]);
        assert_eq!(
            pv.maps,
            vec![
                (Value::sym("inc"), MachineStep::Up),
                (Value::sym("dec"), MachineStep::Down),
            ]
        );
        assert_eq!(sf.meta.multicast, vec!["o".to_string()]);
        assert_eq!(
            sf.meta.complete_msgs,
            vec![("o".to_string(), vec![Value::sym("m")])]
        );
        assert_eq!(
            sf.meta.bounce_msgs,
            vec![("o".to_string(), vec![Value::sym("r")])]
        );
    }

    #[test]
    fn machine_directive_error_cases() {
        let base = "table t\ninput st = I, B\noutput nxtst = DONE, B, NULL\n";
        // Undeclared state / next columns.
        assert!(parse_specfile(&format!("{base}machine nope = nxtst, init I")).is_err());
        assert!(parse_specfile(&format!("{base}machine st = nope, init I")).is_err());
        // Missing init; out-of-domain init/stable/map values.
        assert!(parse_specfile(&format!("{base}machine st = nxtst, stable I")).is_err());
        assert!(parse_specfile(&format!("{base}machine st = nxtst, init X")).is_err());
        assert!(parse_specfile(&format!("{base}machine st = nxtst, init I, stable X")).is_err());
        assert!(parse_specfile(&format!("{base}machine st = nxtst, init I, map X -> I")).is_err());
        assert!(
            parse_specfile(&format!("{base}machine st = nxtst, init I, map DONE -> X")).is_err()
        );
        // Duplicate machine for a column; malformed clauses.
        assert!(parse_specfile(&format!(
            "{base}machine st = nxtst, init I\nmachine st = nxtst, init B"
        ))
        .is_err());
        assert!(parse_specfile(&format!("{base}machine st = nxtst, init I, bogus x")).is_err());
        assert!(parse_specfile(&format!("{base}machine st nxtst, init I")).is_err());
        // multicast / complete / bounce validation.
        assert!(parse_specfile(&format!("{base}multicast nope")).is_err());
        assert!(parse_specfile(&format!("{base}complete nope = m")).is_err());
        assert!(parse_specfile(&format!("{base}complete nxtst = m")).is_err());
        assert!(parse_specfile(&format!("{base}bounce nxtst = DONE\nbounce nope = x")).is_err());
    }

    #[test]
    fn value_token_forms() {
        assert_eq!(parse_value("NULL").unwrap(), Value::Null);
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("42").unwrap(), Value::Int(42));
        assert_eq!(parse_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("\"Busy-sd\"").unwrap(), Value::sym("Busy-sd"));
        assert_eq!(parse_value("readex").unwrap(), Value::sym("readex"));
        assert!(parse_value("").is_err());
    }
}
