//! The textual *database input* format.
//!
//! Section 1 of the paper: "The approach is used in a push-button
//! manner by creating a database input comprised of three components —
//! i) database table schema describing the individual controller table
//! columns and their legal values, ii) SQL constraints specifying the
//! behavior of the controllers, and iii) protocol static checks in
//! terms of SQL constraints and table operations."
//!
//! This module parses exactly that input as a plain-text file:
//!
//! ```text
//! # comment
//! table Fig3
//!
//! input  inmsg = readex, data, idone
//! input  dirst = I, SI, "Busy-sd", "Busy-s", "Busy-d"
//! output remmsg = sinv, NULL
//!
//! constrain dirpv: dirst = I ? dirpv = zero : true
//! constrain remmsg: inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL
//!
//! check pv-consistency: select dirst, dirpv from Fig3 where dirst = "I" and not dirpv = "zero"
//! ```
//!
//! * `table NAME` — the table being specified (exactly one).
//! * `input` / `output` — a column with its column table (legal values;
//!   `NULL` is the don't-care/no-op marker).
//! * `constrain COL: EXPR` — the column constraint (columns without one
//!   are unconstrained, i.e. `true`).
//! * `check NAME: SELECT …` — a static check: the query must return the
//!   empty set once the table is generated.

use crate::error::{Error, Result};
use crate::expr::Expr;
use crate::parser::parse_expr;
use crate::solver::{ColumnDef, ColumnRole, TableSpec};
use crate::value::Value;

/// A parsed database input: the table specification plus its static
/// checks.
pub struct SpecFile {
    /// The table specification (schema + column tables + constraints).
    pub spec: TableSpec,
    /// Static checks: `(name, sql)` pairs whose queries must be empty.
    pub checks: Vec<(String, String)>,
}

/// Parse a database-input file.
pub fn parse_specfile(text: &str) -> Result<SpecFile> {
    let mut table_name: Option<String> = None;
    // (name, values, role) in declaration order.
    let mut columns: Vec<(String, Vec<Value>, ColumnRole)> = Vec::new();
    let mut constraints: Vec<(String, Expr)> = Vec::new();
    let mut checks: Vec<(String, String)> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |msg: String| Error::Parse {
            pos: lineno + 1,
            msg,
        };
        let (keyword, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(format!("expected a directive, found {line:?}")))?;
        let rest = rest.trim();
        match keyword {
            "table" => {
                if table_name.is_some() {
                    return Err(err("duplicate `table` directive".into()));
                }
                table_name = Some(rest.to_string());
            }
            "input" | "output" => {
                let (name, values) = rest
                    .split_once('=')
                    .ok_or_else(|| err(format!("expected `NAME = v1, v2, …`, found {rest:?}")))?;
                let name = name.trim();
                if name.is_empty() {
                    return Err(err("empty column name".into()));
                }
                let role = if keyword == "input" {
                    ColumnRole::Input
                } else {
                    ColumnRole::Output
                };
                let vals: Vec<Value> = values
                    .split(',')
                    .map(|v| parse_value(v.trim()))
                    .collect::<Result<_>>()
                    .map_err(|e| err(format!("bad value list: {e}")))?;
                if vals.is_empty() {
                    return Err(err(format!("column {name} has no values")));
                }
                columns.push((name.to_string(), vals, role));
            }
            "constrain" => {
                let (col, expr) = rest
                    .split_once(':')
                    .ok_or_else(|| err("expected `constrain COL: EXPR`".into()))?;
                let e = parse_expr(expr.trim())
                    .map_err(|e| err(format!("bad constraint for {}: {e}", col.trim())))?;
                constraints.push((col.trim().to_string(), e));
            }
            "check" => {
                let (name, sql) = rest
                    .split_once(':')
                    .ok_or_else(|| err("expected `check NAME: SELECT …`".into()))?;
                checks.push((name.trim().to_string(), sql.trim().to_string()));
            }
            other => return Err(err(format!("unknown directive {other:?}"))),
        }
    }

    let name = table_name.ok_or(Error::Parse {
        pos: 0,
        msg: "missing `table NAME` directive".into(),
    })?;
    let mut spec = TableSpec::new(&name);
    for (cname, values, role) in columns {
        let constraint = constraints
            .iter()
            .find(|(c, _)| *c == cname)
            .map(|(_, e)| e.clone())
            .unwrap_or(Expr::True);
        let def = match role {
            ColumnRole::Input => ColumnDef::input(&cname, values, constraint),
            ColumnRole::Output => ColumnDef::output(&cname, values, constraint),
        };
        spec.push(def);
    }
    // A constraint naming an undeclared column is a spec bug.
    for (c, _) in &constraints {
        if !spec.columns.iter().any(|col| col.name.as_str() == c) {
            return Err(Error::BadSpec(format!(
                "constraint for undeclared column {c}"
            )));
        }
    }
    Ok(SpecFile { spec, checks })
}

/// Parse one value token: `NULL`, a quoted string, an integer, or a
/// bare symbol.
fn parse_value(tok: &str) -> Result<Value> {
    if tok.is_empty() {
        return Err(Error::Parse {
            pos: 0,
            msg: "empty value".into(),
        });
    }
    if tok.eq_ignore_ascii_case("null") {
        return Ok(Value::Null);
    }
    if tok.eq_ignore_ascii_case("true") {
        return Ok(Value::Bool(true));
    }
    if tok.eq_ignore_ascii_case("false") {
        return Ok(Value::Bool(false));
    }
    if let Some(stripped) = tok.strip_prefix('"').and_then(|t| t.strip_suffix('"')) {
        return Ok(Value::sym(stripped));
    }
    if let Ok(n) = tok.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Ok(Value::sym(tok))
}

/// Generate the table from a database input and run its static checks
/// against the result. Returns the generated relation and any failing
/// checks with their witness relations.
pub fn solve_specfile(sf: &SpecFile) -> Result<(crate::Relation, Vec<(String, crate::Relation)>)> {
    let (rel, _) = sf
        .spec
        .generate(crate::GenMode::Incremental, &crate::expr::SetContext::new())?;
    let mut db = crate::Database::new();
    db.put_table(&sf.spec.name, rel.clone());
    let mut failures = Vec::new();
    for (name, sql) in &sf.checks {
        let witnesses = db.query(sql)?;
        if !witnesses.is_empty() {
            failures.push((name.clone(), witnesses));
        }
    }
    Ok((rel, failures))
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG3_MINI: &str = r#"
# The readex slice of the directory controller, as a database input.
table Fig3

input inmsg = readex, data, idone
input dirst = I, SI, "Busy-sd", "Busy-s", "Busy-d"
input dirpv = zero, one, gone

output remmsg = sinv, NULL
output memmsg = mread, NULL

constrain dirst: inmsg = readex ? dirst in (I, SI) : (inmsg = data ? dirst in ("Busy-sd", "Busy-d") : dirst in ("Busy-sd", "Busy-s"))
constrain dirpv: dirst = I ? dirpv = zero : (dirst = SI ? dirpv in (one, gone) : (inmsg = data and dirst = "Busy-d" ? dirpv = zero : dirpv in (zero, one, gone)))
constrain remmsg: inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL
constrain memmsg: inmsg = readex ? memmsg = mread : memmsg = NULL

check sinv-only-on-shared-readex: select inmsg, dirst, remmsg from Fig3 where remmsg = "sinv" and not dirst = "SI"
check readex-always-reads-memory: select inmsg, memmsg from Fig3 where inmsg = "readex" and memmsg = NULL
"#;

    #[test]
    fn parses_and_solves_the_mini_input() {
        let sf = parse_specfile(FIG3_MINI).unwrap();
        assert_eq!(sf.spec.name, "Fig3");
        assert_eq!(sf.spec.columns.len(), 5);
        assert_eq!(sf.checks.len(), 2);
        let (rel, failures) = solve_specfile(&sf).unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        // readex: I + SI×2 = 3; data: Busy-sd×3 + Busy-d×1 = 4;
        // idone: Busy-sd×3 + Busy-s×3 = 6 → 13 rows.
        assert_eq!(rel.len(), 13);
    }

    #[test]
    fn checks_fail_with_witnesses() {
        let bad = FIG3_MINI.replace(
            "check sinv-only-on-shared-readex: select inmsg, dirst, remmsg from Fig3 where remmsg = \"sinv\" and not dirst = \"SI\"",
            "check impossible: select inmsg from Fig3 where inmsg = \"readex\"",
        );
        let sf = parse_specfile(&bad).unwrap();
        let (_, failures) = solve_specfile(&sf).unwrap();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, "impossible");
        assert_eq!(failures[0].1.len(), 3);
    }

    #[test]
    fn error_cases() {
        assert!(parse_specfile("input a = x").is_err()); // no table
        assert!(parse_specfile("table t\ntable u").is_err()); // duplicate
        assert!(parse_specfile("table t\nbogus x").is_err()); // directive
        assert!(parse_specfile("table t\ninput a x, y").is_err()); // no '='
        assert!(parse_specfile("table t\ninput = x").is_err()); // no name
        assert!(parse_specfile("table t\ninput a = x\nconstrain b: true").is_err()); // unknown col
        assert!(parse_specfile("table t\ninput a = x\nconstrain a bad").is_err()); // no ':'
        assert!(parse_specfile("table t\ninput a = x\nconstrain a: ? ?").is_err());
        // bad expr
    }

    #[test]
    fn value_token_forms() {
        assert_eq!(parse_value("NULL").unwrap(), Value::Null);
        assert_eq!(parse_value("null").unwrap(), Value::Null);
        assert_eq!(parse_value("42").unwrap(), Value::Int(42));
        assert_eq!(parse_value("-7").unwrap(), Value::Int(-7));
        assert_eq!(parse_value("true").unwrap(), Value::Bool(true));
        assert_eq!(parse_value("\"Busy-sd\"").unwrap(), Value::sym("Busy-sd"));
        assert_eq!(parse_value("readex").unwrap(), Value::sym("readex"));
        assert!(parse_value("").is_err());
    }
}
