//! Columnar relation layout for the compiled solver path.
//!
//! [`crate::relation::Relation`] stores rows as one flat row-major
//! `Vec<Value>` — the right shape for reports and set algebra, the
//! wrong one for candidate filtering, where each extension step reads
//! every cell of a column across hundreds of thousands of candidates.
//! [`ColumnarRelation`] keeps one dense `Vec<u32>` of interned value
//! ids ([`Value::vid`]) **per column**: a [`crate::compile::Program`]
//! evaluating column `c` of candidate `i` is a single indexed word
//! load, no per-row `Vec<Value>` materialisation, and surviving rows
//! are gathered column-at-a-time into fresh columns — sequential reads
//! and writes on both sides.
//!
//! Conversions are exact: ids are injective, so
//! `from_relation(r).to_relation() == r` including row order, which is
//! what lets the solver do all intermediate work columnar and only
//! decode once at the end.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::{vid_decode_table, Value};

/// A relation stored column-major as interned value ids.
#[derive(Clone, Debug)]
pub struct ColumnarRelation {
    schema: Schema,
    cols: Vec<Vec<u32>>,
}

impl ColumnarRelation {
    /// An empty relation with `schema.arity()` empty columns.
    pub fn new(schema: Schema) -> ColumnarRelation {
        let cols = (0..schema.arity()).map(|_| Vec::new()).collect();
        ColumnarRelation { schema, cols }
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of rows (length of every column).
    pub fn len(&self) -> usize {
        self.cols.first().map_or(0, Vec::len)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Column `c` as a dense id slice.
    #[inline]
    pub fn col(&self, c: usize) -> &[u32] {
        &self.cols[c]
    }

    /// Mutable access to column `c` (bulk appends during extension).
    #[inline]
    pub fn col_mut(&mut self, c: usize) -> &mut Vec<u32> {
        &mut self.cols[c]
    }

    /// Replace the columns wholesale (the schema's arity must match).
    pub fn set_cols(&mut self, cols: Vec<Vec<u32>>) {
        debug_assert_eq!(cols.len(), self.schema.arity());
        debug_assert!(cols.windows(2).all(|w| w[0].len() == w[1].len()));
        self.cols = cols;
    }

    /// Intern every cell of `r` into the id pool, column by column.
    pub fn from_relation(r: &Relation) -> ColumnarRelation {
        let mut out = ColumnarRelation::new(r.schema().clone());
        for c in 0..r.arity() {
            out.cols[c].reserve(r.len());
        }
        for row in r.rows() {
            for (c, v) in row.iter().enumerate() {
                out.cols[c].push(v.vid());
            }
        }
        out
    }

    /// Decode back to a row-major [`Relation`], preserving row order.
    pub fn to_relation(&self) -> Relation {
        let decode = vid_decode_table();
        let mut out = Relation::new(self.schema.clone());
        out.reserve_rows(self.len());
        let mut row: Vec<Value> = vec![Value::Null; self.arity()];
        for i in 0..self.len() {
            for (c, cell) in row.iter_mut().enumerate() {
                *cell = decode[self.cols[c][i] as usize];
            }
            out.push_row_unchecked(&row);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let mut r = Relation::with_columns(["a", "b"]).unwrap();
        r.push_row(&[Value::sym("x"), Value::Null]).unwrap();
        r.push_row(&[Value::Int(7), Value::sym("y")]).unwrap();
        r.push_row(&[Value::sym("x"), Value::sym("x")]).unwrap();
        r
    }

    #[test]
    fn round_trip_preserves_rows_and_order() {
        let r = sample();
        let c = ColumnarRelation::from_relation(&r);
        assert_eq!(c.len(), 3);
        assert_eq!(c.arity(), 2);
        let back = c.to_relation();
        assert_eq!(back.len(), r.len());
        for (a, b) in r.rows().zip(back.rows()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn columns_hold_interned_ids() {
        let c = ColumnarRelation::from_relation(&sample());
        assert_eq!(c.col(0)[0], Value::sym("x").vid());
        assert_eq!(c.col(0)[2], c.col(1)[2], "same value, same id");
        assert_eq!(c.col(1)[0], crate::value::NULL_VID);
    }

    #[test]
    fn empty_relation_round_trips() {
        let r = Relation::with_columns(["a"]).unwrap();
        let c = ColumnarRelation::from_relation(&r);
        assert!(c.is_empty());
        assert_eq!(c.to_relation().len(), 0);
    }
}
