//! Hash indexes over relations.
//!
//! The deadlock-analysis composition step probes "rows whose (source,
//! destination, channel) columns equal K" millions of times; a hash index
//! turns each probe into O(bucket).

use crate::error::Result;
use crate::relation::{hash_cols, Relation};
use crate::symbol::Sym;
use crate::value::Value;
use ccsql_obs::hash::{FxBuildHasher, FxHashMap};

/// A multi-column hash index: key columns → row indices.
pub struct Index {
    key_cols: Vec<usize>,
    buckets: FxHashMap<u64, Vec<u32>>,
}

impl Index {
    /// Build an index over `cols` of `rel`.
    pub fn build(rel: &Relation, cols: &[&str]) -> Result<Index> {
        let key_cols: Vec<usize> = cols
            .iter()
            .map(|c| rel.schema().require(Sym::intern(c), "index"))
            .collect::<Result<_>>()?;
        let mut buckets: FxHashMap<u64, Vec<u32>> =
            FxHashMap::with_capacity_and_hasher(rel.len(), FxBuildHasher);
        for (i, r) in rel.rows().enumerate() {
            buckets
                .entry(hash_cols(r, &key_cols))
                .or_default()
                .push(i as u32);
        }
        Ok(Index { key_cols, buckets })
    }

    /// Row indices of `rel` whose key columns equal `key` (exact check
    /// performed; hash collisions are filtered out).
    pub fn probe<'a>(
        &'a self,
        rel: &'a Relation,
        key: &'a [Value],
    ) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(key.len(), self.key_cols.len());
        // Must hash exactly like `hash_cols` (element-wise FxHasher).
        let mut h = ccsql_obs::hash::FxHasher::default();
        use std::hash::{Hash, Hasher};
        for v in key {
            v.hash(&mut h);
        }
        let bucket = self.buckets.get(&h.finish());
        bucket
            .into_iter()
            .flatten()
            .map(|&i| i as usize)
            .filter(move |&i| {
                let row = rel.row(i);
                self.key_cols.iter().zip(key).all(|(&c, &k)| row[c] == k)
            })
    }

    /// Number of distinct hash buckets (diagnostics).
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    fn sample() -> Relation {
        let mut r = Relation::with_columns(["m", "s", "d"]).unwrap();
        for (m, s, d) in [
            ("wb", "home", "home"),
            ("idone", "remote", "home"),
            ("mread", "home", "home"),
            ("compl", "home", "local"),
        ] {
            r.push_row(&[v(m), v(s), v(d)]).unwrap();
        }
        r
    }

    #[test]
    fn probe_finds_matching_rows() {
        let r = sample();
        let ix = Index::build(&r, &["s", "d"]).unwrap();
        let hits: Vec<usize> = ix.probe(&r, &[v("home"), v("home")]).collect();
        assert_eq!(hits, vec![0, 2]);
        let none: Vec<usize> = ix.probe(&r, &[v("local"), v("home")]).collect();
        assert!(none.is_empty());
    }

    #[test]
    fn probe_verifies_exact_keys() {
        // Even if hashes collide, only exact key matches are returned.
        let r = sample();
        let ix = Index::build(&r, &["m"]).unwrap();
        let hits: Vec<usize> = ix.probe(&r, &[v("compl")]).collect();
        assert_eq!(hits, vec![3]);
    }

    #[test]
    fn unknown_column_errors() {
        let r = sample();
        assert!(Index::build(&r, &["nope"]).is_err());
    }
}
