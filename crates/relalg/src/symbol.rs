//! Process-global string interner.
//!
//! Every enumerated value in a protocol specification (message names,
//! controller states, virtual channels, …) is interned once and then
//! handled as a copyable 32-bit id. This keeps [`crate::Value`] `Copy`,
//! makes row hashing and equality integer-speed, and lets tables be
//! shared freely between databases.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string. Two `Sym`s are equal iff their strings are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Sym(u32);

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Sym {
    /// Intern `s`, returning its id. Idempotent.
    pub fn intern(s: &str) -> Sym {
        {
            let g = interner().read().unwrap();
            if let Some(&id) = g.map.get(s) {
                return Sym(id);
            }
        }
        let mut g = interner().write().unwrap();
        if let Some(&id) = g.map.get(s) {
            return Sym(id);
        }
        // Interned strings live for the process lifetime; the protocol
        // vocabulary is small and fixed, so leaking is the right trade.
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = g.strings.len() as u32;
        g.strings.push(leaked);
        g.map.insert(leaked, id);
        Sym(id)
    }

    /// The interned string.
    pub fn as_str(self) -> &'static str {
        interner().read().unwrap().strings[self.0 as usize]
    }

    /// Raw id — stable within a process run only.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::intern(s)
    }
}

/// Symbols sort by their string, so reports are deterministic and
/// human-ordered regardless of interning order.
impl Ord for Sym {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Sym::intern("readex");
        let b = Sym::intern("readex");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(a.as_str(), "readex");
    }

    #[test]
    fn distinct_strings_get_distinct_ids() {
        assert_ne!(Sym::intern("sinv"), Sym::intern("mread"));
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern in reverse lexicographic order to prove order is by string.
        let z = Sym::intern("zzz-order-test");
        let a = Sym::intern("aaa-order-test");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Sym::intern("concurrent-test").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
