//! Boolean/value expressions: the language of column constraints and
//! `WHERE` clauses.
//!
//! The paper builds constraints from column names, literals, sets of
//! literals, the relational operators `=`, `≠`, `in`, the boolean
//! operators `and`, `or`, `not`, and the ternary form
//! `cond ? true-expr : false-expr`. This module implements exactly that
//! language, plus named predicate sets such as `isrequest(inmsg)` which
//! the paper uses in its invariants.
//!
//! Expressions are first *bound* against a schema ([`Expr::bind`]) so
//! evaluation works on column indices with no per-row name lookups.

use crate::error::{Error, Result};
use crate::schema::Schema;
use crate::symbol::Sym;
use crate::value::Value;
use std::collections::HashMap;
use std::collections::HashSet;
use std::fmt;

/// Context supplied at evaluation time: named sets usable as predicates
/// (`isrequest(x)` ⇔ `x in isrequest`).
pub trait EvalContext {
    /// Membership test for named set `name`.
    fn set_contains(&self, name: Sym, v: Value) -> Result<bool>;

    /// Enumerate the members of named set `name`, when this context can.
    /// `None` (the default) means the set is opaque or undefined, and
    /// callers must test membership through
    /// [`EvalContext::set_contains`]. Contexts that can enumerate let
    /// the bytecode compiler turn a set call into a precomputed bitset.
    fn set_members(&self, _name: Sym) -> Option<Vec<Value>> {
        None
    }
}

/// An empty context: any named-set reference errors.
pub struct NoContext;

impl EvalContext for NoContext {
    fn set_contains(&self, name: Sym, _v: Value) -> Result<bool> {
        Err(Error::NoSuchSet(name.to_string()))
    }
}

/// A context backed by a map of named sets.
#[derive(Default, Clone)]
pub struct SetContext {
    sets: HashMap<Sym, HashSet<Value>>,
}

impl SetContext {
    /// Empty context.
    pub fn new() -> SetContext {
        SetContext::default()
    }

    /// Define (or replace) a named set.
    pub fn define<I: IntoIterator<Item = Value>>(&mut self, name: &str, values: I) {
        self.sets
            .insert(Sym::intern(name), values.into_iter().collect());
    }
}

impl EvalContext for SetContext {
    fn set_contains(&self, name: Sym, v: Value) -> Result<bool> {
        self.sets
            .get(&name)
            .map(|s| s.contains(&v))
            .ok_or_else(|| Error::NoSuchSet(name.to_string()))
    }

    fn set_members(&self, name: Sym) -> Option<Vec<Value>> {
        self.sets.get(&name).map(|s| s.iter().copied().collect())
    }
}

/// An unbound expression over column names.
#[derive(Clone, PartialEq)]
pub enum Expr {
    /// A column reference.
    Col(Sym),
    /// A parse-time identifier: resolves to a column if the schema has
    /// one of this name, otherwise to a symbolic literal. This mirrors
    /// the paper's SQL style, where `dirpv = zero` compares the column
    /// `dirpv` with the enumerated constant `zero`.
    Ident(Sym),
    /// A literal value.
    Lit(Value),
    /// Equality (`=`). NULL compares like a normal value.
    Eq(Box<Expr>, Box<Expr>),
    /// Inequality (`!=` / `<>`).
    Ne(Box<Expr>, Box<Expr>),
    /// Set membership: `e in (v1, v2, …)`.
    In(Box<Expr>, Vec<Value>),
    /// Conjunction.
    And(Box<Expr>, Box<Expr>),
    /// Disjunction.
    Or(Box<Expr>, Box<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// Named-set predicate call, e.g. `isrequest(inmsg)`.
    Call(Sym, Box<Expr>),
    /// The paper's ternary constraint `c ? t : f`, equivalent to
    /// `(c and t) or (not c and f)`.
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Boolean literal `true` (the constraint of an unconstrained column).
    True,
    /// Boolean literal `false`.
    False,
}

impl Expr {
    /// `Expr::Col` from a name.
    pub fn col(name: &str) -> Expr {
        Expr::Col(Sym::intern(name))
    }

    /// `Expr::Lit` from a symbolic literal.
    pub fn sym(name: &str) -> Expr {
        Expr::Lit(Value::sym(name))
    }

    /// `Expr::Lit(Value::Null)`.
    pub fn null() -> Expr {
        Expr::Lit(Value::Null)
    }

    /// `col = "lit"` shorthand.
    pub fn col_eq(name: &str, lit: &str) -> Expr {
        Expr::Eq(Box::new(Expr::col(name)), Box::new(Expr::sym(lit)))
    }

    /// `col = NULL` shorthand.
    pub fn col_is_null(name: &str) -> Expr {
        Expr::Eq(Box::new(Expr::col(name)), Box::new(Expr::null()))
    }

    /// `col in (lits…)` shorthand.
    pub fn col_in(name: &str, lits: &[&str]) -> Expr {
        Expr::In(
            Box::new(Expr::col(name)),
            lits.iter().map(|s| Value::sym(s)).collect(),
        )
    }

    /// `self and rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(rhs))
    }

    /// `self or rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(rhs))
    }

    /// `not self`.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self ? t : f`.
    pub fn ternary(self, t: Expr, f: Expr) -> Expr {
        Expr::Ternary(Box::new(self), Box::new(t), Box::new(f))
    }

    /// Conjunction of many expressions (`True` if empty).
    pub fn all<I: IntoIterator<Item = Expr>>(exprs: I) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::True,
            Some(first) => it.fold(first, |acc, e| acc.and(e)),
        }
    }

    /// Disjunction of many expressions (`False` if empty).
    pub fn any<I: IntoIterator<Item = Expr>>(exprs: I) -> Expr {
        let mut it = exprs.into_iter();
        match it.next() {
            None => Expr::False,
            Some(first) => it.fold(first, |acc, e| acc.or(e)),
        }
    }

    /// Column names referenced by this expression.
    pub fn columns(&self) -> Vec<Sym> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<Sym>) {
        match self {
            // `Ident` may or may not be a column; callers using
            // `columns()` for dependency analysis treat it as a
            // potential column reference.
            Expr::Col(c) | Expr::Ident(c) => out.push(*c),
            Expr::Lit(_) | Expr::True | Expr::False => {}
            Expr::Eq(a, b) | Expr::Ne(a, b) | Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_columns(out);
                b.collect_columns(out);
            }
            Expr::In(e, _) | Expr::Not(e) | Expr::Call(_, e) => e.collect_columns(out),
            Expr::Ternary(c, t, f) => {
                c.collect_columns(out);
                t.collect_columns(out);
                f.collect_columns(out);
            }
        }
    }

    /// Bind against a schema, resolving column names to indices.
    pub fn bind(&self, schema: &Schema) -> Result<BoundExpr> {
        self.bind_with(&mut |name| Ok(schema.index_of(name)))
    }

    /// Bind with a custom column resolver. `resolve` returns the row
    /// index for a name, `Ok(None)` if the name is not a column (an
    /// [`Expr::Ident`] then becomes a symbolic literal; an explicit
    /// [`Expr::Col`] errors), or `Err` for e.g. ambiguous references.
    pub fn bind_with(
        &self,
        resolve: &mut dyn FnMut(Sym) -> Result<Option<usize>>,
    ) -> Result<BoundExpr> {
        Ok(match self {
            Expr::Col(c) => match resolve(*c)? {
                Some(i) => BoundExpr::Col(i),
                None => return Err(Error::NoSuchColumn(c.to_string(), "expression".to_string())),
            },
            Expr::Ident(c) => match resolve(*c)? {
                Some(i) => BoundExpr::Col(i),
                None => BoundExpr::Lit(Value::Sym(*c)),
            },
            Expr::Lit(v) => BoundExpr::Lit(*v),
            Expr::Eq(a, b) => BoundExpr::Eq(
                Box::new(a.bind_with(resolve)?),
                Box::new(b.bind_with(resolve)?),
            ),
            Expr::Ne(a, b) => BoundExpr::Ne(
                Box::new(a.bind_with(resolve)?),
                Box::new(b.bind_with(resolve)?),
            ),
            Expr::In(e, vs) => BoundExpr::In(
                Box::new(e.bind_with(resolve)?),
                vs.iter().copied().collect(),
            ),
            Expr::And(a, b) => BoundExpr::And(
                Box::new(a.bind_with(resolve)?),
                Box::new(b.bind_with(resolve)?),
            ),
            Expr::Or(a, b) => BoundExpr::Or(
                Box::new(a.bind_with(resolve)?),
                Box::new(b.bind_with(resolve)?),
            ),
            Expr::Not(e) => BoundExpr::Not(Box::new(e.bind_with(resolve)?)),
            Expr::Call(name, e) => BoundExpr::Call(*name, Box::new(e.bind_with(resolve)?)),
            Expr::Ternary(c, t, f) => BoundExpr::Or(
                Box::new(BoundExpr::And(
                    Box::new(c.bind_with(resolve)?),
                    Box::new(t.bind_with(resolve)?),
                )),
                Box::new(BoundExpr::And(
                    Box::new(BoundExpr::Not(Box::new(c.bind_with(resolve)?))),
                    Box::new(f.bind_with(resolve)?),
                )),
            ),
            Expr::True => BoundExpr::True,
            Expr::False => BoundExpr::False,
        })
    }

    /// Is this the literal `true`?
    pub fn is_true(&self) -> bool {
        matches!(self, Expr::True)
    }

    /// Is this the literal `false`?
    pub fn is_false(&self) -> bool {
        matches!(self, Expr::False)
    }

    /// Rewrite [`Expr::Ident`] nodes: identifiers for which `is_column`
    /// holds become explicit [`Expr::Col`] references, all others
    /// become symbolic literals. This mirrors the resolution
    /// [`Expr::bind_with`] performs at bind time, but keeps the result
    /// an `Expr` so static analysis can work on it unbound.
    pub fn resolve_idents(&self, is_column: &dyn Fn(Sym) -> bool) -> Expr {
        match self {
            Expr::Ident(c) => {
                if is_column(*c) {
                    Expr::Col(*c)
                } else {
                    Expr::Lit(Value::Sym(*c))
                }
            }
            Expr::Col(_) | Expr::Lit(_) | Expr::True | Expr::False => self.clone(),
            Expr::Eq(a, b) => Expr::Eq(
                Box::new(a.resolve_idents(is_column)),
                Box::new(b.resolve_idents(is_column)),
            ),
            Expr::Ne(a, b) => Expr::Ne(
                Box::new(a.resolve_idents(is_column)),
                Box::new(b.resolve_idents(is_column)),
            ),
            Expr::In(e, vs) => Expr::In(Box::new(e.resolve_idents(is_column)), vs.clone()),
            Expr::And(a, b) => Expr::And(
                Box::new(a.resolve_idents(is_column)),
                Box::new(b.resolve_idents(is_column)),
            ),
            Expr::Or(a, b) => Expr::Or(
                Box::new(a.resolve_idents(is_column)),
                Box::new(b.resolve_idents(is_column)),
            ),
            Expr::Not(e) => Expr::Not(Box::new(e.resolve_idents(is_column))),
            Expr::Call(name, e) => Expr::Call(*name, Box::new(e.resolve_idents(is_column))),
            Expr::Ternary(c, t, f) => Expr::Ternary(
                Box::new(c.resolve_idents(is_column)),
                Box::new(t.resolve_idents(is_column)),
                Box::new(f.resolve_idents(is_column)),
            ),
        }
    }

    /// Partially evaluate under a partial assignment: `lookup` gives a
    /// column's value when it is fixed, `ctx` resolves named-set calls
    /// over known arguments (errors leave the call in place). Determined
    /// sub-expressions fold to [`Expr::True`] / [`Expr::False`] /
    /// literals; the rest is rebuilt structurally. The folding matches
    /// [`BoundExpr`] evaluation semantics: `=` is plain value equality
    /// (so `NULL = NULL` holds) and and/or fold with Kleene rules,
    /// which agrees with the short-circuit evaluator on every total
    /// assignment of well-typed constraints. [`Expr::Ident`] is left
    /// untouched — run [`Expr::resolve_idents`] first.
    pub fn reduce(&self, lookup: &dyn Fn(Sym) -> Option<Value>, ctx: &dyn EvalContext) -> Expr {
        match self {
            Expr::Col(c) => match lookup(*c) {
                Some(v) => Expr::Lit(v),
                None => self.clone(),
            },
            Expr::Ident(_) | Expr::Lit(_) | Expr::True | Expr::False => self.clone(),
            Expr::Eq(a, b) => match (a.reduce(lookup, ctx), b.reduce(lookup, ctx)) {
                (Expr::Lit(x), Expr::Lit(y)) => {
                    if x == y {
                        Expr::True
                    } else {
                        Expr::False
                    }
                }
                (ra, rb) => Expr::Eq(Box::new(ra), Box::new(rb)),
            },
            Expr::Ne(a, b) => match (a.reduce(lookup, ctx), b.reduce(lookup, ctx)) {
                (Expr::Lit(x), Expr::Lit(y)) => {
                    if x != y {
                        Expr::True
                    } else {
                        Expr::False
                    }
                }
                (ra, rb) => Expr::Ne(Box::new(ra), Box::new(rb)),
            },
            Expr::In(e, vs) => match e.reduce(lookup, ctx) {
                Expr::Lit(v) => {
                    if vs.contains(&v) {
                        Expr::True
                    } else {
                        Expr::False
                    }
                }
                re => Expr::In(Box::new(re), vs.clone()),
            },
            Expr::And(a, b) => {
                let ra = a.reduce(lookup, ctx);
                if ra.is_false() {
                    return Expr::False;
                }
                let rb = b.reduce(lookup, ctx);
                if rb.is_false() {
                    return Expr::False;
                }
                match (ra.is_true(), rb.is_true()) {
                    (true, true) => Expr::True,
                    (true, false) => rb,
                    (false, true) => ra,
                    (false, false) => Expr::And(Box::new(ra), Box::new(rb)),
                }
            }
            Expr::Or(a, b) => {
                let ra = a.reduce(lookup, ctx);
                if ra.is_true() {
                    return Expr::True;
                }
                let rb = b.reduce(lookup, ctx);
                if rb.is_true() {
                    return Expr::True;
                }
                match (ra.is_false(), rb.is_false()) {
                    (true, true) => Expr::False,
                    (true, false) => rb,
                    (false, true) => ra,
                    (false, false) => Expr::Or(Box::new(ra), Box::new(rb)),
                }
            }
            Expr::Not(e) => match e.reduce(lookup, ctx) {
                Expr::True => Expr::False,
                Expr::False => Expr::True,
                re => Expr::Not(Box::new(re)),
            },
            Expr::Call(name, e) => {
                let re = e.reduce(lookup, ctx);
                if let Expr::Lit(v) = &re {
                    if let Ok(b) = ctx.set_contains(*name, *v) {
                        return if b { Expr::True } else { Expr::False };
                    }
                }
                Expr::Call(*name, Box::new(re))
            }
            Expr::Ternary(c, t, f) => match c.reduce(lookup, ctx) {
                Expr::True => t.reduce(lookup, ctx),
                Expr::False => f.reduce(lookup, ctx),
                rc => Expr::Ternary(
                    Box::new(rc),
                    Box::new(t.reduce(lookup, ctx)),
                    Box::new(f.reduce(lookup, ctx)),
                ),
            },
        }
    }
}

/// Pretty-print in the constraint language's own syntax: the output of
/// `Display` re-parses (via [`crate::parse_expr`]) to an equal AST
/// (with explicit [`Expr::Col`] references rendered as bare
/// identifiers, which the parser reads back as [`Expr::Ident`]).
impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn lit(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match v {
                Value::Sym(s) => write!(f, "\"{s}\""),
                Value::Null => write!(f, "NULL"),
                Value::Int(i) => write!(f, "{i}"),
                Value::Bool(b) => write!(f, "{b}"),
            }
        }
        match self {
            Expr::Col(c) | Expr::Ident(c) => write!(f, "{c}"),
            Expr::Lit(v) => lit(v, f),
            Expr::Eq(a, b) => write!(f, "{a} = {b}"),
            Expr::Ne(a, b) => write!(f, "{a} != {b}"),
            Expr::In(e, vs) => {
                write!(f, "{e} in (")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    lit(v, f)?;
                }
                write!(f, ")")
            }
            Expr::And(a, b) => write!(f, "({a} and {b})"),
            Expr::Or(a, b) => write!(f, "({a} or {b})"),
            Expr::Not(e) => write!(f, "not ({e})"),
            Expr::Call(n, e) => write!(f, "{n}({e})"),
            Expr::Ternary(c, t, x) => write!(f, "({c} ? {t} : {x})"),
            Expr::True => write!(f, "true"),
            Expr::False => write!(f, "false"),
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Ident(c) => write!(f, "{c}?"),
            Expr::Lit(v) => write!(f, "{v:?}"),
            Expr::Eq(a, b) => write!(f, "({a:?} = {b:?})"),
            Expr::Ne(a, b) => write!(f, "({a:?} != {b:?})"),
            Expr::In(e, vs) => write!(f, "({e:?} in {vs:?})"),
            Expr::And(a, b) => write!(f, "({a:?} and {b:?})"),
            Expr::Or(a, b) => write!(f, "({a:?} or {b:?})"),
            Expr::Not(e) => write!(f, "(not {e:?})"),
            Expr::Call(n, e) => write!(f, "{n}({e:?})"),
            Expr::Ternary(c, t, x) => write!(f, "({c:?} ? {t:?} : {x:?})"),
            Expr::True => write!(f, "true"),
            Expr::False => write!(f, "false"),
        }
    }
}

/// An expression bound to a schema: column references are indices, and
/// the ternary form has been desugared. Evaluation is allocation-free.
#[derive(Clone, Debug, PartialEq)]
pub enum BoundExpr {
    /// Column by index.
    Col(usize),
    /// Literal.
    Lit(Value),
    /// Equality.
    Eq(Box<BoundExpr>, Box<BoundExpr>),
    /// Inequality.
    Ne(Box<BoundExpr>, Box<BoundExpr>),
    /// Membership in a literal set.
    In(Box<BoundExpr>, HashSet<Value>),
    /// Conjunction (short-circuit).
    And(Box<BoundExpr>, Box<BoundExpr>),
    /// Disjunction (short-circuit).
    Or(Box<BoundExpr>, Box<BoundExpr>),
    /// Negation.
    Not(Box<BoundExpr>),
    /// Named-set predicate.
    Call(Sym, Box<BoundExpr>),
    /// Constant true.
    True,
    /// Constant false.
    False,
}

impl BoundExpr {
    /// Evaluate to a [`Value`] on `row`.
    pub fn eval(&self, row: &[Value], ctx: &dyn EvalContext) -> Result<Value> {
        Ok(match self {
            BoundExpr::Col(i) => row[*i],
            BoundExpr::Lit(v) => *v,
            BoundExpr::Eq(a, b) => Value::Bool(a.eval(row, ctx)? == b.eval(row, ctx)?),
            BoundExpr::Ne(a, b) => Value::Bool(a.eval(row, ctx)? != b.eval(row, ctx)?),
            BoundExpr::In(e, vs) => Value::Bool(vs.contains(&e.eval(row, ctx)?)),
            BoundExpr::And(a, b) => {
                if a.eval_bool(row, ctx)? {
                    Value::Bool(b.eval_bool(row, ctx)?)
                } else {
                    Value::Bool(false)
                }
            }
            BoundExpr::Or(a, b) => {
                if a.eval_bool(row, ctx)? {
                    Value::Bool(true)
                } else {
                    Value::Bool(b.eval_bool(row, ctx)?)
                }
            }
            BoundExpr::Not(e) => Value::Bool(!e.eval_bool(row, ctx)?),
            BoundExpr::Call(name, e) => Value::Bool(ctx.set_contains(*name, e.eval(row, ctx)?)?),
            BoundExpr::True => Value::Bool(true),
            BoundExpr::False => Value::Bool(false),
        })
    }

    /// Evaluate as a predicate; errors if the result is not boolean.
    pub fn eval_bool(&self, row: &[Value], ctx: &dyn EvalContext) -> Result<bool> {
        match self.eval(row, ctx)? {
            Value::Bool(b) => Ok(b),
            other => Err(Error::NotBoolean(format!("{other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(["inmsg", "dirst", "dirpv"]).unwrap()
    }

    fn row(a: &str, b: &str, c: &str) -> Vec<Value> {
        vec![Value::sym(a), Value::sym(b), Value::sym(c)]
    }

    #[test]
    fn eq_and_ne() {
        let s = schema();
        let e = Expr::col_eq("inmsg", "readex").bind(&s).unwrap();
        assert!(e
            .eval_bool(&row("readex", "SI", "one"), &NoContext)
            .unwrap());
        assert!(!e.eval_bool(&row("read", "SI", "one"), &NoContext).unwrap());

        let ne = Expr::Ne(Box::new(Expr::col("dirst")), Box::new(Expr::sym("I")))
            .bind(&s)
            .unwrap();
        assert!(ne
            .eval_bool(&row("readex", "SI", "one"), &NoContext)
            .unwrap());
        assert!(!ne
            .eval_bool(&row("readex", "I", "one"), &NoContext)
            .unwrap());
    }

    #[test]
    fn ternary_matches_paper_semantics() {
        // inmsg = "data" and dirst = "Busy-d" ? dirpv = zero : dirpv = one
        let s = schema();
        let c = Expr::col_eq("inmsg", "data").and(Expr::col_eq("dirst", "Busy-d"));
        let e = c
            .ternary(Expr::col_eq("dirpv", "zero"), Expr::col_eq("dirpv", "one"))
            .bind(&s)
            .unwrap();
        // Condition holds: require zero.
        assert!(e
            .eval_bool(&row("data", "Busy-d", "zero"), &NoContext)
            .unwrap());
        assert!(!e
            .eval_bool(&row("data", "Busy-d", "one"), &NoContext)
            .unwrap());
        // Condition fails: require one.
        assert!(e
            .eval_bool(&row("readex", "SI", "one"), &NoContext)
            .unwrap());
        assert!(!e
            .eval_bool(&row("readex", "SI", "zero"), &NoContext)
            .unwrap());
    }

    #[test]
    fn in_set_membership() {
        let s = schema();
        let e = Expr::col_in("dirst", &["I", "SI"]).bind(&s).unwrap();
        assert!(e.eval_bool(&row("x", "SI", "one"), &NoContext).unwrap());
        assert!(!e.eval_bool(&row("x", "MESI", "one"), &NoContext).unwrap());
    }

    #[test]
    fn null_literal_equality() {
        let s = schema();
        let e = Expr::col_is_null("dirpv").bind(&s).unwrap();
        let mut r = row("x", "SI", "unused");
        r[2] = Value::Null;
        assert!(e.eval_bool(&r, &NoContext).unwrap());
        assert!(!e.eval_bool(&row("x", "SI", "one"), &NoContext).unwrap());
    }

    #[test]
    fn call_uses_named_sets() {
        let s = schema();
        let mut ctx = SetContext::new();
        ctx.define("isrequest", [Value::sym("readex"), Value::sym("wb")]);
        let e = Expr::Call(Sym::intern("isrequest"), Box::new(Expr::col("inmsg")))
            .bind(&s)
            .unwrap();
        assert!(e.eval_bool(&row("readex", "I", "zero"), &ctx).unwrap());
        assert!(!e.eval_bool(&row("data", "I", "zero"), &ctx).unwrap());
        // Unknown set errors.
        assert!(e
            .eval_bool(&row("readex", "I", "zero"), &NoContext)
            .is_err());
    }

    #[test]
    fn unknown_column_fails_at_bind_time() {
        let s = schema();
        assert!(Expr::col_eq("nocol", "x").bind(&s).is_err());
    }

    #[test]
    fn non_boolean_predicate_is_an_error() {
        let s = schema();
        let e = Expr::col("inmsg").bind(&s).unwrap();
        assert!(e
            .eval_bool(&row("readex", "I", "zero"), &NoContext)
            .is_err());
    }

    #[test]
    fn all_and_any_combinators() {
        let s = schema();
        let t = Expr::all([]).bind(&s).unwrap();
        assert!(t.eval_bool(&row("a", "b", "c"), &NoContext).unwrap());
        let f = Expr::any([]).bind(&s).unwrap();
        assert!(!f.eval_bool(&row("a", "b", "c"), &NoContext).unwrap());

        let both = Expr::all([Expr::col_eq("inmsg", "a"), Expr::col_eq("dirst", "b")])
            .bind(&s)
            .unwrap();
        assert!(both.eval_bool(&row("a", "b", "c"), &NoContext).unwrap());
        assert!(!both.eval_bool(&row("a", "x", "c"), &NoContext).unwrap());
    }

    #[test]
    fn ident_resolves_to_column_or_literal() {
        let s = schema();
        // `dirpv = zero`: dirpv is a column, zero is not → literal.
        let e = Expr::Eq(
            Box::new(Expr::Ident(Sym::intern("dirpv"))),
            Box::new(Expr::Ident(Sym::intern("zero"))),
        )
        .bind(&s)
        .unwrap();
        assert!(e.eval_bool(&row("x", "SI", "zero"), &NoContext).unwrap());
        assert!(!e.eval_bool(&row("x", "SI", "one"), &NoContext).unwrap());
    }

    #[test]
    fn explicit_col_requires_resolution() {
        let s = schema();
        assert!(Expr::Col(Sym::intern("nope")).bind(&s).is_err());
    }

    #[test]
    fn columns_are_collected_sorted_unique() {
        let e = Expr::col_eq("dirst", "SI")
            .and(Expr::col_eq("inmsg", "readex"))
            .or(Expr::col_eq("dirst", "I"));
        let cols: Vec<&str> = e.columns().iter().map(|c| c.as_str()).collect();
        assert_eq!(cols, ["dirst", "inmsg"]);
    }
}
