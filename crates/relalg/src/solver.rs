//! The finite-domain constraint solver: column tables + column
//! constraints → controller table.
//!
//! This reproduces the generation procedure of section 3 of the paper:
//!
//! * every column of a controller table has a **column table** — the set
//!   of values legal in that column (always including `NULL`, the
//!   don't-care/noop marker, unless the spec says otherwise);
//! * every column has a **column constraint**, a boolean (often ternary)
//!   expression over the columns of the table (`true` for unconstrained
//!   columns);
//! * the controller table is the set of all assignments in the cross
//!   product of the column tables satisfying the conjunction of all
//!   column constraints.
//!
//! Two strategies are provided, mirroring the paper's measurement that
//! incremental generation takes minutes while solving the whole
//! conjunction takes ~6 hours:
//!
//! * [`GenMode::Monolithic`] walks the full cross product of **all**
//!   column tables and filters by the full conjunction (streaming; never
//!   materialises the product, but still exponential time);
//! * [`GenMode::Incremental`] adds one column at a time — in spec order —
//!   and after each addition applies every constraint whose referenced
//!   columns are all present, pruning the intermediate table early. This
//!   is the paper's "inputs first, then one output column at a time"
//!   procedure generalised to prune as early as possible.
//!
//! Incremental generation can be parallelised over row chunks with
//! [`GenMode::IncrementalParallel`] (std scoped threads;
//! deterministic output order).
//!
//! ## The compiled hot path
//!
//! By default the incremental modes run **compiled**: each column
//! constraint is lowered once per `generate` call to a bytecode
//! [`Program`] (see [`crate::compile`]) and the intermediate table is
//! kept columnar as interned value ids ([`ColumnarRelation`]), so the
//! per-candidate work is a tight register loop over `u32`s instead of a
//! recursive `Expr` walk over freshly materialised `Vec<Value>` rows.
//! Three properties make this safe:
//!
//! * **compile-once-per-generate** — every intermediate schema is a
//!   *prefix* of the full schema, so column indices bound against the
//!   full schema are valid in every step, and readiness gating (a
//!   constraint runs only once all its referenced columns exist)
//!   guarantees a program never loads a column past the current arity;
//! * **identical filter semantics** — programs evaluate exactly like
//!   [`BoundExpr::eval_bool`] (property-tested in `tests/bytecode.rs`),
//!   and filters only ever *remove* candidates from the fixed
//!   cross-product order, so the rows and their order are byte-identical
//!   to the interpreted path at any thread count;
//! * **identical accounting** — readiness is computed from the
//!   *original* constraints on both paths, so `candidates`, `per_column`
//!   and `steps` match too.
//!
//! The interpreter remains available via [`GenOptions`] `compile: false`
//! (CLI `--no-compile`) as the differential-testing oracle.

use crate::columnar::ColumnarRelation;
use crate::compile::{compile_constraint, Program};
use crate::error::{Error, Result};
use crate::expr::{BoundExpr, EvalContext, Expr, SetContext};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::symbol::Sym;
use crate::value::Value;
use std::time::{Duration, Instant};

/// Whether a column is an input or an output of the controller state
/// machine. (Outputs with value `NULL` mean "no operation".)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnRole {
    /// Input column (incoming message, current state, lookup result, …).
    Input,
    /// Output column (outgoing messages, next state, …).
    Output,
}

/// One column of a table specification.
#[derive(Clone, Debug)]
pub struct ColumnDef {
    /// Column name.
    pub name: Sym,
    /// Legal values (the paper's *column table*).
    pub values: Vec<Value>,
    /// Input or output.
    pub role: ColumnRole,
    /// The column constraint (`Expr::True` when unconstrained).
    pub constraint: Expr,
}

impl ColumnDef {
    /// Input column with the given legal values and constraint.
    pub fn input(name: &str, values: Vec<Value>, constraint: Expr) -> ColumnDef {
        ColumnDef {
            name: Sym::intern(name),
            values,
            role: ColumnRole::Input,
            constraint,
        }
    }

    /// Output column with the given legal values and constraint.
    pub fn output(name: &str, values: Vec<Value>, constraint: Expr) -> ColumnDef {
        ColumnDef {
            name: Sym::intern(name),
            values,
            role: ColumnRole::Output,
            constraint,
        }
    }
}

/// A full table specification: the database input of the paper's
/// push-button flow (table schema + column tables + column constraints).
#[derive(Clone, Debug)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Columns in generation order (inputs conventionally first).
    pub columns: Vec<ColumnDef>,
}

/// Generation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenMode {
    /// Full cross product filtered by the whole conjunction (streaming).
    Monolithic,
    /// Column-at-a-time with early constraint application.
    Incremental,
    /// Incremental, with the per-column extension step parallelised over
    /// `threads` std scoped threads.
    IncrementalParallel {
        /// Worker thread count (≥ 1).
        threads: usize,
    },
}

/// Generation options: the strategy plus whether the incremental modes
/// run compiled (bytecode + columnar, the default) or interpreted
/// (tree-walking `BoundExpr` over `Value` rows — the differential
/// oracle). Monolithic generation is always interpreted; it exists as a
/// correctness baseline, not a fast path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenOptions {
    /// Generation strategy.
    pub mode: GenMode,
    /// Lower constraints to bytecode and evaluate columnar (default).
    pub compile: bool,
}

impl From<GenMode> for GenOptions {
    fn from(mode: GenMode) -> GenOptions {
        GenOptions {
            mode,
            compile: true,
        }
    }
}

impl GenOptions {
    /// The given mode with compilation disabled (the oracle path).
    pub fn interpreted(mode: GenMode) -> GenOptions {
        GenOptions {
            mode,
            compile: false,
        }
    }
}

/// Statistics from one generation run.
#[derive(Clone, Debug)]
pub struct GenStats {
    /// Candidate rows evaluated (sum over all extension steps).
    pub candidates: u64,
    /// Rows in the final table.
    pub rows: usize,
    /// Columns in the final table.
    pub columns: usize,
    /// Per-column intermediate sizes: (column, rows after adding it).
    pub per_column: Vec<(Sym, usize)>,
    /// Per-step detail (candidates evaluated, rows kept, elapsed) —
    /// one entry per incremental extension step, a single entry for
    /// monolithic generation.
    pub steps: Vec<GenStep>,
    /// Time spent lowering constraints to bytecode (zero when
    /// interpreted).
    pub compile: Duration,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// One extension step of incremental generation (one column added).
#[derive(Clone, Debug)]
pub struct GenStep {
    /// The column added in this step.
    pub column: Sym,
    /// Candidate rows evaluated (|intermediate| × |column table|).
    pub candidates: u64,
    /// Rows surviving the constraints applied at this step.
    pub rows: usize,
    /// Wall-clock time of the step.
    pub elapsed: Duration,
}

/// Record a finished generation run into the global `ccsql_obs`
/// registry and (when tracing) the global event ring. No-op when
/// metrics are disabled — the solver's hot loops never touch this.
fn record_gen_metrics(table: &str, stats: &GenStats) {
    if !ccsql_obs::enabled() {
        return;
    }
    let reg = ccsql_obs::global();
    reg.counter("solver.tables").inc();
    reg.counter("solver.candidates").add(stats.candidates);
    reg.counter("solver.rows_kept").add(stats.rows as u64);
    let pruned: u64 = stats
        .steps
        .iter()
        .map(|s| s.candidates.saturating_sub(s.rows as u64))
        .sum();
    reg.counter("solver.rows_pruned").add(pruned);
    reg.histogram("solver.generate_us")
        .record(stats.elapsed.as_micros() as u64);
    if !stats.compile.is_zero() {
        reg.histogram("solver.compile_us")
            .record(stats.compile.as_micros() as u64);
    }
    for s in &stats.steps {
        reg.histogram("solver.step_us")
            .record(s.elapsed.as_micros() as u64);
        ccsql_obs::emit(
            "solver",
            "column",
            vec![
                ("table", table.into()),
                ("column", s.column.as_str().into()),
                ("candidates", s.candidates.into()),
                ("rows", s.rows.into()),
                ("elapsed_us", (s.elapsed.as_micros() as u64).into()),
            ],
        );
    }
}

impl TableSpec {
    /// New spec.
    pub fn new(name: &str) -> TableSpec {
        TableSpec {
            name: name.to_string(),
            columns: Vec::new(),
        }
    }

    /// Append a column.
    pub fn push(&mut self, col: ColumnDef) -> &mut Self {
        self.columns.push(col);
        self
    }

    /// Names of all columns in order.
    pub fn column_names(&self) -> Vec<Sym> {
        self.columns.iter().map(|c| c.name).collect()
    }

    /// Names of input columns.
    pub fn input_names(&self) -> Vec<Sym> {
        self.columns
            .iter()
            .filter(|c| c.role == ColumnRole::Input)
            .map(|c| c.name)
            .collect()
    }

    /// Names of output columns.
    pub fn output_names(&self) -> Vec<Sym> {
        self.columns
            .iter()
            .filter(|c| c.role == ColumnRole::Output)
            .map(|c| c.name)
            .collect()
    }

    /// Validate the spec: nonempty column tables, unique names, and
    /// constraints referencing only known columns.
    pub fn validate(&self) -> Result<()> {
        if self.columns.is_empty() {
            return Err(Error::BadSpec(format!("{}: no columns", self.name)));
        }
        let schema = Schema::from_syms(&self.column_names())?;
        for c in &self.columns {
            if c.values.is_empty() {
                return Err(Error::BadSpec(format!(
                    "{}: column {} has an empty column table",
                    self.name, c.name
                )));
            }
            // Bind eagerly to surface unknown explicit Col references.
            // (`Ident`s that are not columns bind as symbolic literals.)
            c.constraint.bind(&schema)?;
        }
        Ok(())
    }

    /// Generate the table. See [`GenMode`]; compiled evaluation is on.
    pub fn generate<C: EvalContext + Sync>(
        &self,
        mode: GenMode,
        ctx: &C,
    ) -> Result<(Relation, GenStats)> {
        self.generate_with(mode.into(), ctx)
    }

    /// Generate the table with explicit [`GenOptions`].
    pub fn generate_with<C: EvalContext + Sync>(
        &self,
        opts: GenOptions,
        ctx: &C,
    ) -> Result<(Relation, GenStats)> {
        self.validate()?;
        let start = Instant::now();
        let fspan = ccsql_obs::flight::span("solve", &self.name);
        let schema = Schema::from_syms(&self.column_names())?;
        let result = match opts.mode {
            GenMode::Monolithic => self.generate_monolithic(&schema, ctx),
            GenMode::Incremental => self.generate_incremental(&schema, ctx, 1, opts.compile),
            GenMode::IncrementalParallel { threads } => {
                self.generate_incremental(&schema, ctx, threads.max(1), opts.compile)
            }
        };
        result.map(|(rel, mut stats)| {
            stats.elapsed = start.elapsed();
            stats.rows = rel.len();
            stats.columns = rel.arity();
            fspan.arg("rows", stats.rows);
            fspan.arg("columns", stats.columns);
            fspan.arg("candidates", stats.candidates);
            record_gen_metrics(&self.name, &stats);
            (rel, stats)
        })
    }

    /// Convenience: incremental generation with a default context.
    pub fn generate_default(&self) -> Result<(Relation, GenStats)> {
        self.generate(GenMode::Incremental, &SetContext::new())
    }

    fn generate_monolithic<C: EvalContext + Sync>(
        &self,
        schema: &Schema,
        ctx: &C,
    ) -> Result<(Relation, GenStats)> {
        // Conjunction of all constraints, bound once against the full schema.
        let conj = Expr::all(self.columns.iter().map(|c| c.constraint.clone()));
        let bound = conj.bind(schema)?;

        let mut out = Relation::new(schema.clone());
        let n = self.columns.len();
        let mut idx = vec![0usize; n];
        let mut row: Vec<Value> = self.columns.iter().map(|c| c.values[0]).collect();
        let mut candidates: u64 = 0;
        // Odometer over the cross product; streams, never materialises.
        'outer: loop {
            candidates += 1;
            if bound.eval_bool(&row, ctx)? {
                out.push_row_unchecked(&row);
            }
            let mut k = n;
            loop {
                if k == 0 {
                    break 'outer;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < self.columns[k].values.len() {
                    row[k] = self.columns[k].values[idx[k]];
                    break;
                }
                idx[k] = 0;
                row[k] = self.columns[k].values[0];
            }
        }
        let stats = GenStats {
            candidates,
            rows: 0,
            columns: 0,
            per_column: vec![(self.columns[n - 1].name, out.len())],
            steps: vec![GenStep {
                column: self.columns[n - 1].name,
                candidates,
                rows: out.len(),
                elapsed: Duration::ZERO,
            }],
            compile: Duration::ZERO,
            elapsed: Duration::ZERO,
        };
        Ok((out, stats))
    }

    /// Referenced-column indices per constraint, computed from the
    /// *original* expressions (shared by the compiled and interpreted
    /// paths so readiness — and therefore candidate accounting — is
    /// identical on both).
    fn constraint_deps(&self, full_schema: &Schema) -> Vec<Vec<usize>> {
        self.columns
            .iter()
            .map(|c| {
                c.constraint
                    .columns()
                    .into_iter()
                    .filter_map(|n| full_schema.index_of(n))
                    .collect()
            })
            .collect()
    }

    fn generate_incremental<C: EvalContext + Sync>(
        &self,
        full_schema: &Schema,
        ctx: &C,
        threads: usize,
        compile: bool,
    ) -> Result<(Relation, GenStats)> {
        if compile {
            self.generate_incremental_compiled(full_schema, ctx, threads)
        } else {
            self.generate_incremental_interp(full_schema, ctx, threads)
        }
    }

    /// The compiled incremental path: constraints lowered once to
    /// bytecode against the full schema (valid at every step because
    /// intermediate schemas are prefixes), intermediate table held
    /// columnar as value ids, decoded to a row-major [`Relation`] once
    /// at the end.
    fn generate_incremental_compiled<C: EvalContext + Sync>(
        &self,
        full_schema: &Schema,
        ctx: &C,
        threads: usize,
    ) -> Result<(Relation, GenStats)> {
        let all_names = self.column_names();
        let deps = self.constraint_deps(full_schema);

        let compile_start = Instant::now();
        let programs: Vec<Program> = {
            let _cspan = ccsql_obs::flight::span("solve", "compile");
            self.columns
                .iter()
                .map(|c| compile_constraint(&c.constraint, full_schema, ctx))
                .collect::<Result<_>>()?
        };
        let compile_time = compile_start.elapsed();
        if ccsql_obs::enabled() {
            ccsql_obs::global()
                .counter("solver.programs_compiled")
                .add(programs.len() as u64);
        }

        // Constant-true programs (unconstrained columns after folding)
        // filter nothing; skipping them lets fully unconstrained
        // extension steps take a bulk cross-product path with no
        // evaluation at all.
        let active = |ready: &[usize]| -> Vec<&Program> {
            ready
                .iter()
                .map(|&ci| &programs[ci])
                .filter(|p| p.const_result() != Some(true))
                .collect()
        };

        let mut applied = vec![false; self.columns.len()];
        let mut per_column = Vec::with_capacity(self.columns.len());
        let mut steps = Vec::with_capacity(self.columns.len());
        let mut candidates: u64 = 0;

        // Seed: the first column's table, filtered by any constraint
        // that only mentions it (or nothing).
        let step_start = Instant::now();
        let mut cur = ColumnarRelation::new(Schema::from_syms(&all_names[..1])?);
        cur.col_mut(0)
            .extend(self.columns[0].values.iter().map(|v| v.vid()));
        let step_cands = cur.len() as u64;
        candidates += step_cands;
        let ready: Vec<usize> = (0..self.columns.len())
            .filter(|&ci| !applied[ci] && deps[ci].iter().all(|&d| d < 1))
            .collect();
        let progs = active(&ready);
        if !progs.is_empty() {
            cur = filter_ids(&cur, &progs, ctx, threads)?;
        }
        for &ci in &ready {
            applied[ci] = true;
        }
        per_column.push((self.columns[0].name, cur.len()));
        steps.push(GenStep {
            column: self.columns[0].name,
            candidates: step_cands,
            rows: cur.len(),
            elapsed: step_start.elapsed(),
        });

        for k in 1..self.columns.len() {
            let step_start = Instant::now();
            let col_span = ccsql_obs::flight::span("solve", self.columns[k].name.as_str());
            let sub_schema = Schema::from_syms(&all_names[..=k])?;
            // Constraints that become checkable once column k exists.
            let ready: Vec<usize> = (0..self.columns.len())
                .filter(|&ci| !applied[ci] && deps[ci].iter().all(|&d| d <= k))
                .collect();
            let progs = active(&ready);
            for &ci in &ready {
                applied[ci] = true;
            }

            let ext_ids: Vec<u32> = self.columns[k].values.iter().map(|v| v.vid()).collect();
            let step_cands = cur.len() as u64 * ext_ids.len() as u64;
            candidates += step_cands;
            cur = extend_filter_ids(&cur, sub_schema, &ext_ids, &progs, ctx, threads)?;
            col_span.arg("candidates", step_cands);
            col_span.arg("rows", cur.len());
            per_column.push((self.columns[k].name, cur.len()));
            steps.push(GenStep {
                column: self.columns[k].name,
                candidates: step_cands,
                rows: cur.len(),
                elapsed: step_start.elapsed(),
            });
        }

        // Any constraint not yet applied (e.g. one whose dependencies are
        // all early columns but was registered late) — apply now.
        let pending: Vec<usize> = (0..self.columns.len()).filter(|&i| !applied[i]).collect();
        if !pending.is_empty() {
            let progs = active(&pending);
            if !progs.is_empty() {
                cur = filter_ids(&cur, &progs, ctx, threads)?;
            }
        }

        let stats = GenStats {
            candidates,
            rows: 0,
            columns: 0,
            per_column,
            steps,
            compile: compile_time,
            elapsed: Duration::ZERO,
        };
        Ok((cur.to_relation(), stats))
    }

    /// The interpreted incremental path (the differential oracle).
    /// Constraints are bound **once** against the full schema — valid in
    /// every step because intermediate schemas are prefixes of it — and
    /// each step evaluates its ready set as a short-circuit conjunction,
    /// instead of the old per-step `Expr::all(…clone())` rebuild+rebind.
    fn generate_incremental_interp<C: EvalContext + Sync>(
        &self,
        full_schema: &Schema,
        ctx: &C,
        threads: usize,
    ) -> Result<(Relation, GenStats)> {
        let all_names = self.column_names();
        let deps = self.constraint_deps(full_schema);
        let bounds: Vec<BoundExpr> = self
            .columns
            .iter()
            .map(|c| c.constraint.bind(full_schema))
            .collect::<Result<_>>()?;

        let mut applied = vec![false; self.columns.len()];
        let mut per_column = Vec::with_capacity(self.columns.len());
        let mut steps = Vec::with_capacity(self.columns.len());
        let mut candidates: u64 = 0;

        // Start with the first column's table filtered by any constraint
        // that only mentions it.
        let step_start = Instant::now();
        let mut current = Relation::new(Schema::from_syms(&all_names[..1])?);
        for &v in &self.columns[0].values {
            current.push_row_unchecked(&[v]);
        }
        let step_cands = current.len() as u64;
        candidates += step_cands;
        let ready: Vec<usize> = (0..self.columns.len())
            .filter(|&ci| !applied[ci] && deps[ci].iter().all(|&d| d < 1))
            .collect();
        if !ready.is_empty() {
            let preds: Vec<&BoundExpr> = ready.iter().map(|&ci| &bounds[ci]).collect();
            current = filter_rows(&current, &preds, ctx, threads)?;
        }
        for &ci in &ready {
            applied[ci] = true;
        }
        per_column.push((self.columns[0].name, current.len()));
        steps.push(GenStep {
            column: self.columns[0].name,
            candidates: step_cands,
            rows: current.len(),
            elapsed: step_start.elapsed(),
        });

        for k in 1..self.columns.len() {
            let step_start = Instant::now();
            let col_span = ccsql_obs::flight::span("solve", self.columns[k].name.as_str());
            let sub_schema = Schema::from_syms(&all_names[..=k])?;
            // Constraints that become checkable once column k exists.
            let ready: Vec<usize> = (0..self.columns.len())
                .filter(|&ci| !applied[ci] && deps[ci].iter().all(|&d| d <= k))
                .collect();
            let preds: Vec<&BoundExpr> = ready.iter().map(|&ci| &bounds[ci]).collect();
            for &ci in &ready {
                applied[ci] = true;
            }

            let vals = &self.columns[k].values;
            let step_cands = current.len() as u64 * vals.len() as u64;
            candidates += step_cands;
            current = extend_filter(&current, &sub_schema, vals, &preds, ctx, threads)?;
            col_span.arg("candidates", step_cands);
            col_span.arg("rows", current.len());
            per_column.push((self.columns[k].name, current.len()));
            steps.push(GenStep {
                column: self.columns[k].name,
                candidates: step_cands,
                rows: current.len(),
                elapsed: step_start.elapsed(),
            });
        }

        // Any constraint not yet applied (e.g. one whose dependencies are
        // all early columns but was registered late) — apply now.
        let pending: Vec<usize> = (0..self.columns.len()).filter(|&i| !applied[i]).collect();
        if !pending.is_empty() {
            let preds: Vec<&BoundExpr> = pending.iter().map(|&ci| &bounds[ci]).collect();
            current = filter_rows(&current, &preds, ctx, threads)?;
        }

        let stats = GenStats {
            candidates,
            rows: 0,
            columns: 0,
            per_column,
            steps,
            compile: Duration::ZERO,
            elapsed: Duration::ZERO,
        };
        Ok((current, stats))
    }
}

/// Minimum rows per worker before a chunk loop goes parallel: below
/// this, thread spawn/join dominates the work (the 0.95× "speedup" the
/// depend bench once recorded) and the loop runs inline instead.
const PAR_MIN_ROWS_PER_WORKER: usize = 4096;

/// Split `0..n` into per-worker chunks and run `f` on each, inline when
/// the input is too small to amortise thread spawn. Results come back
/// in chunk order, so callers that concatenate them get output
/// independent of the worker count.
fn par_chunks<R: Send>(
    n: usize,
    threads: usize,
    f: &(impl Fn(std::ops::Range<usize>) -> R + Sync),
) -> Vec<R> {
    let workers = threads.max(1).min(n / PAR_MIN_ROWS_PER_WORKER).max(1);
    if workers <= 1 {
        return vec![f(0..n)];
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                // Clamp the start too: with ceil-division the trailing
                // worker's nominal start can exceed `n`; it must get an
                // empty range, never an out-of-bounds one.
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                s.spawn(move || f(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("solver worker panicked"))
            .collect()
    })
}

/// Evaluate every program against one candidate, short-circuiting like
/// the conjunction the interpreter folds.
#[inline]
fn progs_pass(
    progs: &[&Program],
    col: impl Fn(usize) -> u32 + Copy,
    ctx: &dyn EvalContext,
    regs: &mut [u32],
) -> Result<bool> {
    for p in progs {
        if !p.eval_cols(col, ctx, regs)? {
            return Ok(false);
        }
    }
    Ok(true)
}

fn scratch_regs(progs: &[&Program]) -> Vec<u32> {
    vec![0u32; progs.iter().map(|p| p.num_regs()).max().unwrap_or(1)]
}

/// Extend every row of `cur` with every id in `ext_ids`, keeping the
/// candidates every program accepts. Two-phase: workers record
/// surviving `(row, extension)` pairs over their chunk, then the new
/// columns are gathered column-at-a-time — sequential reads and writes,
/// no per-candidate row materialisation. With no programs the result is
/// the pure cross product, built by bulk repetition.
fn extend_filter_ids<C: EvalContext + Sync>(
    cur: &ColumnarRelation,
    out_schema: Schema,
    ext_ids: &[u32],
    progs: &[&Program],
    ctx: &C,
    threads: usize,
) -> Result<ColumnarRelation> {
    let arity = cur.arity();
    let n = cur.len();
    let m = ext_ids.len();
    let mut out = ColumnarRelation::new(out_schema);

    if progs.is_empty() {
        // Unconstrained step: cross product with no evaluation.
        for c in 0..arity {
            let src = cur.col(c);
            let dst = out.col_mut(c);
            dst.reserve(n * m);
            for &id in src {
                dst.extend(std::iter::repeat_n(id, m));
            }
        }
        let dst = out.col_mut(arity);
        dst.reserve(n * m);
        for _ in 0..n {
            dst.extend_from_slice(ext_ids);
        }
        return Ok(out);
    }

    let run_chunk = |rows: std::ops::Range<usize>| -> Result<Vec<(u32, u32)>> {
        let mut keep: Vec<(u32, u32)> = Vec::new();
        let mut regs = scratch_regs(progs);
        for i in rows {
            for &v in ext_ids {
                let col = |c: usize| if c < arity { cur.col(c)[i] } else { v };
                if progs_pass(progs, col, ctx, &mut regs)? {
                    keep.push((i as u32, v));
                }
            }
        }
        Ok(keep)
    };

    let mut survivors: Vec<(u32, u32)> = Vec::new();
    for r in par_chunks(n, threads, &run_chunk) {
        survivors.extend(r?);
    }
    for c in 0..arity {
        let src = cur.col(c);
        out.col_mut(c)
            .extend(survivors.iter().map(|&(r, _)| src[r as usize]));
    }
    out.col_mut(arity).extend(survivors.iter().map(|&(_, v)| v));
    Ok(out)
}

/// Keep the rows of `cur` every program accepts (columnar id path).
fn filter_ids<C: EvalContext + Sync>(
    cur: &ColumnarRelation,
    progs: &[&Program],
    ctx: &C,
    threads: usize,
) -> Result<ColumnarRelation> {
    let n = cur.len();
    let run_chunk = |rows: std::ops::Range<usize>| -> Result<Vec<u32>> {
        let mut keep: Vec<u32> = Vec::new();
        let mut regs = scratch_regs(progs);
        for i in rows {
            let col = |c: usize| cur.col(c)[i];
            if progs_pass(progs, col, ctx, &mut regs)? {
                keep.push(i as u32);
            }
        }
        Ok(keep)
    };
    let mut survivors: Vec<u32> = Vec::new();
    for r in par_chunks(n, threads, &run_chunk) {
        survivors.extend(r?);
    }
    let mut out = ColumnarRelation::new(cur.schema().clone());
    for c in 0..cur.arity() {
        let src = cur.col(c);
        out.col_mut(c)
            .extend(survivors.iter().map(|&r| src[r as usize]));
    }
    Ok(out)
}

/// Evaluate the bound predicates as a short-circuit conjunction.
#[inline]
fn preds_pass(preds: &[&BoundExpr], row: &[Value], ctx: &dyn EvalContext) -> Result<bool> {
    for p in preds {
        if !p.eval_bool(row, ctx)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Extend every row of `current` with every value in `vals`, keeping the
/// candidates satisfying every predicate (interpreted oracle path).
fn extend_filter<C: EvalContext + Sync>(
    current: &Relation,
    out_schema: &Schema,
    vals: &[Value],
    preds: &[&BoundExpr],
    ctx: &C,
    threads: usize,
) -> Result<Relation> {
    let arity = current.arity();
    let run_chunk = |rows: std::ops::Range<usize>| -> Result<Vec<Value>> {
        let mut data: Vec<Value> = Vec::new();
        let mut cand: Vec<Value> = vec![Value::Null; arity + 1];
        for i in rows {
            let r = current.row(i);
            cand[..arity].copy_from_slice(r);
            for &v in vals {
                cand[arity] = v;
                if preds_pass(preds, &cand, ctx)? {
                    data.extend_from_slice(&cand);
                }
            }
        }
        Ok(data)
    };

    let n = current.len();
    let mut out = Relation::new(out_schema.clone());
    for r in par_chunks(n, threads, &run_chunk) {
        let data = r?;
        for chunk in data.chunks_exact(arity + 1) {
            out.push_row_unchecked(chunk);
        }
    }
    Ok(out)
}

/// Keep the rows of `rel` satisfying every predicate (parallel when
/// large; interpreted oracle path).
fn filter_rows<C: EvalContext + Sync>(
    rel: &Relation,
    preds: &[&BoundExpr],
    ctx: &C,
    threads: usize,
) -> Result<Relation> {
    let arity = rel.arity();
    let n = rel.len();
    let run_chunk = |rows: std::ops::Range<usize>| -> Result<Vec<Value>> {
        let mut data = Vec::new();
        for i in rows {
            let r = rel.row(i);
            if preds_pass(preds, r, ctx)? {
                data.extend_from_slice(r);
            }
        }
        Ok(data)
    };
    let mut out = Relation::new(rel.schema().clone());
    for r in par_chunks(n, threads, &run_chunk) {
        let data = r?;
        for chunk in data.chunks_exact(arity.max(1)) {
            out.push_row_unchecked(chunk);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::SetContext;

    fn vals(names: &[&str]) -> Vec<Value> {
        names.iter().map(|n| Value::sym(n)).collect()
    }

    /// The paper's Figure-3 miniature: readex transaction at D with 3
    /// inputs and 2 of the outputs.
    fn mini_spec() -> TableSpec {
        let mut spec = TableSpec::new("Dmini");
        spec.push(ColumnDef::input(
            "inmsg",
            vals(&["readex", "data", "idone"]),
            Expr::True,
        ));
        spec.push(ColumnDef::input(
            "dirst",
            vals(&["I", "SI", "Busy-sd", "Busy-s", "Busy-d"]),
            // Legal input combinations only.
            crate::parser::parse_expr(
                "inmsg = readex ? dirst in (I, SI) : \
                 (inmsg = data ? dirst in (\"Busy-sd\", \"Busy-d\") : dirst in (\"Busy-sd\", \"Busy-s\"))",
            )
            .unwrap(),
        ));
        spec.push(ColumnDef::input(
            "dirpv",
            vals(&["zero", "one", "gone"]),
            crate::parser::parse_expr(
                "dirst = I ? dirpv = zero : (dirst = SI ? dirpv in (one, gone) : dirpv in (zero, one, gone))",
            )
            .unwrap(),
        ));
        spec.push(ColumnDef::output(
            "remmsg",
            {
                let mut v = vals(&["sinv"]);
                v.push(Value::Null);
                v
            },
            crate::parser::parse_expr(
                "inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL",
            )
            .unwrap(),
        ));
        spec.push(ColumnDef::output(
            "nxtdirst",
            vals(&["MESI", "Busy-sd", "Busy-s", "Busy-d", "I"]),
            crate::parser::parse_expr(
                "inmsg = readex ? (dirst = SI ? nxtdirst = \"Busy-sd\" : nxtdirst = \"Busy-d\") : \
                 (inmsg = data ? (dirst = \"Busy-sd\" ? nxtdirst = \"Busy-s\" : nxtdirst = MESI) : \
                 (dirst = \"Busy-sd\" ? nxtdirst = \"Busy-d\" : nxtdirst = MESI))",
            )
            .unwrap(),
        ));
        spec
    }

    #[test]
    fn incremental_generates_expected_rows() {
        let (rel, stats) = mini_spec().generate_default().unwrap();
        // Input combos: readex×(I:zero | SI:one | SI:gone)=3, data×(Busy-sd,Busy-d)×3pv=6,
        // idone×(Busy-sd,Busy-s)×3pv=6 → 15 rows; outputs are functional.
        assert_eq!(rel.len(), 15);
        assert_eq!(rel.arity(), 5);
        assert_eq!(stats.per_column.len(), 5);
        // readex+SI rows must emit sinv.
        for r in rel.rows() {
            let is_rx_si = r[0] == Value::sym("readex") && r[1] == Value::sym("SI");
            assert_eq!(r[3] == Value::sym("sinv"), is_rx_si);
        }
    }

    #[test]
    fn monolithic_equals_incremental() {
        let spec = mini_spec();
        let ctx = SetContext::new();
        let (mono, mstats) = spec.generate(GenMode::Monolithic, &ctx).unwrap();
        let (inc, istats) = spec.generate(GenMode::Incremental, &ctx).unwrap();
        assert!(mono.set_eq(&inc), "monolithic and incremental differ");
        // The monolithic walk inspects the full cross product.
        assert_eq!(mstats.candidates, (3 * 5 * 3 * 2 * 5) as u64);
        // Incremental inspects far fewer candidates.
        assert!(istats.candidates < mstats.candidates);
    }

    #[test]
    fn parallel_equals_sequential() {
        let spec = mini_spec();
        let ctx = SetContext::new();
        let (seq, _) = spec.generate(GenMode::Incremental, &ctx).unwrap();
        let (par, _) = spec
            .generate(GenMode::IncrementalParallel { threads: 4 }, &ctx)
            .unwrap();
        // Same rows, same order (chunks concatenated in order).
        assert!(seq.set_eq(&par));
    }

    #[test]
    fn compiled_equals_interpreted_byte_for_byte() {
        let spec = mini_spec();
        let ctx = SetContext::new();
        for mode in [
            GenMode::Incremental,
            GenMode::IncrementalParallel { threads: 4 },
        ] {
            let (compiled, cs) = spec.generate_with(mode.into(), &ctx).unwrap();
            let (interp, is) = spec
                .generate_with(GenOptions::interpreted(mode), &ctx)
                .unwrap();
            assert_eq!(compiled.len(), interp.len());
            for (a, b) in compiled.rows().zip(interp.rows()) {
                assert_eq!(a, b, "row mismatch under {mode:?}");
            }
            // Accounting must match too: readiness is computed from the
            // original constraints on both paths.
            assert_eq!(cs.candidates, is.candidates);
            assert_eq!(cs.per_column, is.per_column);
            assert_eq!(is.compile, Duration::ZERO);
        }
    }

    #[test]
    fn inconsistent_constraints_give_zero_rows() {
        // The paper: "an inconsistent set of column constraints results
        // in D having zero rows".
        let mut spec = TableSpec::new("bad");
        spec.push(ColumnDef::input("a", vals(&["x"]), Expr::True));
        spec.push(ColumnDef::input(
            "b",
            vals(&["y"]),
            crate::parser::parse_expr("a = x and not a = x").unwrap(),
        ));
        let (rel, _) = spec.generate_default().unwrap();
        assert_eq!(rel.len(), 0);
    }

    #[test]
    fn empty_column_table_rejected() {
        let mut spec = TableSpec::new("bad");
        spec.push(ColumnDef::input("a", vec![], Expr::True));
        assert!(spec.generate_default().is_err());
    }

    #[test]
    fn no_columns_rejected() {
        let spec = TableSpec::new("empty");
        assert!(spec.generate_default().is_err());
    }

    #[test]
    fn named_sets_usable_in_constraints() {
        let mut ctx = SetContext::new();
        ctx.define("isrequest", [Value::sym("readex")]);
        let mut spec = TableSpec::new("t");
        spec.push(ColumnDef::input(
            "m",
            vals(&["readex", "data"]),
            crate::parser::parse_expr("isrequest(m)").unwrap(),
        ));
        let (rel, _) = spec.generate(GenMode::Incremental, &ctx).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0)[0], Value::sym("readex"));
    }

    #[test]
    fn unknown_column_in_constraint_fails_validation() {
        let mut spec = TableSpec::new("t");
        spec.push(ColumnDef::input(
            "a",
            vals(&["x"]),
            Expr::Col(Sym::intern("nonexistent")).ternary(Expr::True, Expr::True),
        ));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn stats_track_shrinking_intermediates() {
        let (_, stats) = mini_spec().generate_default().unwrap();
        // After dirst constraint is applied the intermediate must be
        // smaller than the unconstrained 3×5 product.
        let after_dirst = stats.per_column[1].1;
        assert!(after_dirst < 15, "early pruning failed: {after_dirst}");
        assert!(stats.rows == 15);
        assert!(stats.columns == 5);
    }
}
