//! The finite-domain constraint solver: column tables + column
//! constraints → controller table.
//!
//! This reproduces the generation procedure of section 3 of the paper:
//!
//! * every column of a controller table has a **column table** — the set
//!   of values legal in that column (always including `NULL`, the
//!   don't-care/noop marker, unless the spec says otherwise);
//! * every column has a **column constraint**, a boolean (often ternary)
//!   expression over the columns of the table (`true` for unconstrained
//!   columns);
//! * the controller table is the set of all assignments in the cross
//!   product of the column tables satisfying the conjunction of all
//!   column constraints.
//!
//! Two strategies are provided, mirroring the paper's measurement that
//! incremental generation takes minutes while solving the whole
//! conjunction takes ~6 hours:
//!
//! * [`GenMode::Monolithic`] walks the full cross product of **all**
//!   column tables and filters by the full conjunction (streaming; never
//!   materialises the product, but still exponential time);
//! * [`GenMode::Incremental`] adds one column at a time — in spec order —
//!   and after each addition applies every constraint whose referenced
//!   columns are all present, pruning the intermediate table early. This
//!   is the paper's "inputs first, then one output column at a time"
//!   procedure generalised to prune as early as possible.
//!
//! Incremental generation can be parallelised over row chunks with
//! [`GenMode::IncrementalParallel`] (std scoped threads;
//! deterministic output order).

use crate::error::{Error, Result};
use crate::expr::{BoundExpr, EvalContext, Expr, SetContext};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::symbol::Sym;
use crate::value::Value;
use std::time::{Duration, Instant};

/// Whether a column is an input or an output of the controller state
/// machine. (Outputs with value `NULL` mean "no operation".)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnRole {
    /// Input column (incoming message, current state, lookup result, …).
    Input,
    /// Output column (outgoing messages, next state, …).
    Output,
}

/// One column of a table specification.
#[derive(Clone, Debug)]
pub struct ColumnDef {
    /// Column name.
    pub name: Sym,
    /// Legal values (the paper's *column table*).
    pub values: Vec<Value>,
    /// Input or output.
    pub role: ColumnRole,
    /// The column constraint (`Expr::True` when unconstrained).
    pub constraint: Expr,
}

impl ColumnDef {
    /// Input column with the given legal values and constraint.
    pub fn input(name: &str, values: Vec<Value>, constraint: Expr) -> ColumnDef {
        ColumnDef {
            name: Sym::intern(name),
            values,
            role: ColumnRole::Input,
            constraint,
        }
    }

    /// Output column with the given legal values and constraint.
    pub fn output(name: &str, values: Vec<Value>, constraint: Expr) -> ColumnDef {
        ColumnDef {
            name: Sym::intern(name),
            values,
            role: ColumnRole::Output,
            constraint,
        }
    }
}

/// A full table specification: the database input of the paper's
/// push-button flow (table schema + column tables + column constraints).
#[derive(Clone, Debug)]
pub struct TableSpec {
    /// Table name.
    pub name: String,
    /// Columns in generation order (inputs conventionally first).
    pub columns: Vec<ColumnDef>,
}

/// Generation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GenMode {
    /// Full cross product filtered by the whole conjunction (streaming).
    Monolithic,
    /// Column-at-a-time with early constraint application.
    Incremental,
    /// Incremental, with the per-column extension step parallelised over
    /// `threads` std scoped threads.
    IncrementalParallel {
        /// Worker thread count (≥ 1).
        threads: usize,
    },
}

/// Statistics from one generation run.
#[derive(Clone, Debug)]
pub struct GenStats {
    /// Candidate rows evaluated (sum over all extension steps).
    pub candidates: u64,
    /// Rows in the final table.
    pub rows: usize,
    /// Columns in the final table.
    pub columns: usize,
    /// Per-column intermediate sizes: (column, rows after adding it).
    pub per_column: Vec<(Sym, usize)>,
    /// Per-step detail (candidates evaluated, rows kept, elapsed) —
    /// one entry per incremental extension step, a single entry for
    /// monolithic generation.
    pub steps: Vec<GenStep>,
    /// Wall-clock time.
    pub elapsed: Duration,
}

/// One extension step of incremental generation (one column added).
#[derive(Clone, Debug)]
pub struct GenStep {
    /// The column added in this step.
    pub column: Sym,
    /// Candidate rows evaluated (|intermediate| × |column table|).
    pub candidates: u64,
    /// Rows surviving the constraints applied at this step.
    pub rows: usize,
    /// Wall-clock time of the step.
    pub elapsed: Duration,
}

/// Record a finished generation run into the global `ccsql_obs`
/// registry and (when tracing) the global event ring. No-op when
/// metrics are disabled — the solver's hot loops never touch this.
fn record_gen_metrics(table: &str, stats: &GenStats) {
    if !ccsql_obs::enabled() {
        return;
    }
    let reg = ccsql_obs::global();
    reg.counter("solver.tables").inc();
    reg.counter("solver.candidates").add(stats.candidates);
    reg.counter("solver.rows_kept").add(stats.rows as u64);
    let pruned: u64 = stats
        .steps
        .iter()
        .map(|s| s.candidates.saturating_sub(s.rows as u64))
        .sum();
    reg.counter("solver.rows_pruned").add(pruned);
    reg.histogram("solver.generate_us")
        .record(stats.elapsed.as_micros() as u64);
    for s in &stats.steps {
        reg.histogram("solver.step_us")
            .record(s.elapsed.as_micros() as u64);
        ccsql_obs::emit(
            "solver",
            "column",
            vec![
                ("table", table.into()),
                ("column", s.column.as_str().into()),
                ("candidates", s.candidates.into()),
                ("rows", s.rows.into()),
                ("elapsed_us", (s.elapsed.as_micros() as u64).into()),
            ],
        );
    }
}

impl TableSpec {
    /// New spec.
    pub fn new(name: &str) -> TableSpec {
        TableSpec {
            name: name.to_string(),
            columns: Vec::new(),
        }
    }

    /// Append a column.
    pub fn push(&mut self, col: ColumnDef) -> &mut Self {
        self.columns.push(col);
        self
    }

    /// Names of all columns in order.
    pub fn column_names(&self) -> Vec<Sym> {
        self.columns.iter().map(|c| c.name).collect()
    }

    /// Names of input columns.
    pub fn input_names(&self) -> Vec<Sym> {
        self.columns
            .iter()
            .filter(|c| c.role == ColumnRole::Input)
            .map(|c| c.name)
            .collect()
    }

    /// Names of output columns.
    pub fn output_names(&self) -> Vec<Sym> {
        self.columns
            .iter()
            .filter(|c| c.role == ColumnRole::Output)
            .map(|c| c.name)
            .collect()
    }

    /// Validate the spec: nonempty column tables, unique names, and
    /// constraints referencing only known columns.
    pub fn validate(&self) -> Result<()> {
        if self.columns.is_empty() {
            return Err(Error::BadSpec(format!("{}: no columns", self.name)));
        }
        let schema = Schema::from_syms(&self.column_names())?;
        for c in &self.columns {
            if c.values.is_empty() {
                return Err(Error::BadSpec(format!(
                    "{}: column {} has an empty column table",
                    self.name, c.name
                )));
            }
            for col in c.constraint.columns() {
                // `Ident`s that are not columns are symbolic literals, so
                // only explicit `Col` references can be validated hard;
                // we check that at least the *syntactic* reference set
                // doesn't name something that is neither column nor used
                // as a literal. A full check happens at bind time.
                let _ = col;
            }
            // Bind eagerly to surface unknown explicit Col references.
            c.constraint.bind(&schema)?;
        }
        Ok(())
    }

    /// Generate the table. See [`GenMode`].
    pub fn generate<C: EvalContext + Sync>(
        &self,
        mode: GenMode,
        ctx: &C,
    ) -> Result<(Relation, GenStats)> {
        self.validate()?;
        let start = Instant::now();
        let fspan = ccsql_obs::flight::span("solve", &self.name);
        let schema = Schema::from_syms(&self.column_names())?;
        let result = match mode {
            GenMode::Monolithic => self.generate_monolithic(&schema, ctx),
            GenMode::Incremental => self.generate_incremental(&schema, ctx, 1),
            GenMode::IncrementalParallel { threads } => {
                self.generate_incremental(&schema, ctx, threads.max(1))
            }
        };
        result.map(|(rel, mut stats)| {
            stats.elapsed = start.elapsed();
            stats.rows = rel.len();
            stats.columns = rel.arity();
            fspan.arg("rows", stats.rows);
            fspan.arg("columns", stats.columns);
            fspan.arg("candidates", stats.candidates);
            record_gen_metrics(&self.name, &stats);
            (rel, stats)
        })
    }

    /// Convenience: incremental generation with a default context.
    pub fn generate_default(&self) -> Result<(Relation, GenStats)> {
        self.generate(GenMode::Incremental, &SetContext::new())
    }

    fn generate_monolithic<C: EvalContext + Sync>(
        &self,
        schema: &Schema,
        ctx: &C,
    ) -> Result<(Relation, GenStats)> {
        // Conjunction of all constraints, bound once against the full schema.
        let conj = Expr::all(self.columns.iter().map(|c| c.constraint.clone()));
        let bound = conj.bind(schema)?;

        let mut out = Relation::new(schema.clone());
        let n = self.columns.len();
        let mut idx = vec![0usize; n];
        let mut row: Vec<Value> = self.columns.iter().map(|c| c.values[0]).collect();
        let mut candidates: u64 = 0;
        // Odometer over the cross product; streams, never materialises.
        'outer: loop {
            candidates += 1;
            if bound.eval_bool(&row, ctx)? {
                out.push_row_unchecked(&row);
            }
            let mut k = n;
            loop {
                if k == 0 {
                    break 'outer;
                }
                k -= 1;
                idx[k] += 1;
                if idx[k] < self.columns[k].values.len() {
                    row[k] = self.columns[k].values[idx[k]];
                    break;
                }
                idx[k] = 0;
                row[k] = self.columns[k].values[0];
            }
        }
        let stats = GenStats {
            candidates,
            rows: 0,
            columns: 0,
            per_column: vec![(self.columns[n - 1].name, out.len())],
            steps: vec![GenStep {
                column: self.columns[n - 1].name,
                candidates,
                rows: out.len(),
                elapsed: Duration::ZERO,
            }],
            elapsed: Duration::ZERO,
        };
        Ok((out, stats))
    }

    fn generate_incremental<C: EvalContext + Sync>(
        &self,
        full_schema: &Schema,
        ctx: &C,
        threads: usize,
    ) -> Result<(Relation, GenStats)> {
        let all_names = self.column_names();
        // For each constraint, the set of referenced columns that are
        // actually columns of this table (Idents may be literals).
        let deps: Vec<Vec<usize>> = self
            .columns
            .iter()
            .map(|c| {
                c.constraint
                    .columns()
                    .into_iter()
                    .filter_map(|n| full_schema.index_of(n))
                    .collect()
            })
            .collect();

        let mut applied = vec![false; self.columns.len()];
        let mut per_column = Vec::with_capacity(self.columns.len());
        let mut steps = Vec::with_capacity(self.columns.len());
        let mut candidates: u64 = 0;

        // Start with the first column's table filtered by any constraint
        // that only mentions it.
        let step_start = Instant::now();
        let mut current = Relation::new(Schema::from_syms(&all_names[..1])?);
        for &v in &self.columns[0].values {
            current.push_row_unchecked(&[v]);
        }
        let step_cands = current.len() as u64;
        candidates += step_cands;
        current = self.apply_ready_constraints(current, 1, &deps, &mut applied, ctx, threads)?;
        per_column.push((self.columns[0].name, current.len()));
        steps.push(GenStep {
            column: self.columns[0].name,
            candidates: step_cands,
            rows: current.len(),
            elapsed: step_start.elapsed(),
        });

        for k in 1..self.columns.len() {
            let step_start = Instant::now();
            let col_span = ccsql_obs::flight::span("solve", self.columns[k].name.as_str());
            let sub_schema = Schema::from_syms(&all_names[..=k])?;
            // Constraints that become checkable once column k exists.
            let ready: Vec<usize> = (0..self.columns.len())
                .filter(|&ci| !applied[ci] && deps[ci].iter().all(|&d| d <= k))
                .collect();
            let conj = Expr::all(ready.iter().map(|&ci| self.columns[ci].constraint.clone()));
            let bound = conj.bind(&sub_schema)?;
            for &ci in &ready {
                applied[ci] = true;
            }

            let vals = &self.columns[k].values;
            let step_cands = current.len() as u64 * vals.len() as u64;
            candidates += step_cands;
            current = extend_filter(&current, &sub_schema, vals, &bound, ctx, threads)?;
            col_span.arg("candidates", step_cands);
            col_span.arg("rows", current.len());
            per_column.push((self.columns[k].name, current.len()));
            steps.push(GenStep {
                column: self.columns[k].name,
                candidates: step_cands,
                rows: current.len(),
                elapsed: step_start.elapsed(),
            });
        }

        // Any constraint not yet applied (e.g. one whose dependencies are
        // all early columns but was registered late) — apply now.
        let pending: Vec<usize> = (0..self.columns.len()).filter(|&i| !applied[i]).collect();
        if !pending.is_empty() {
            let conj = Expr::all(
                pending
                    .iter()
                    .map(|&ci| self.columns[ci].constraint.clone()),
            );
            let bound = conj.bind(full_schema)?;
            current = filter_rows(&current, &bound, ctx, threads)?;
        }

        let stats = GenStats {
            candidates,
            rows: 0,
            columns: 0,
            per_column,
            steps,
            elapsed: Duration::ZERO,
        };
        Ok((current, stats))
    }

    fn apply_ready_constraints<C: EvalContext + Sync>(
        &self,
        current: Relation,
        present: usize,
        deps: &[Vec<usize>],
        applied: &mut [bool],
        ctx: &C,
        threads: usize,
    ) -> Result<Relation> {
        let ready: Vec<usize> = (0..self.columns.len())
            .filter(|&ci| !applied[ci] && deps[ci].iter().all(|&d| d < present))
            .collect();
        if ready.is_empty() {
            return Ok(current);
        }
        let conj = Expr::all(ready.iter().map(|&ci| self.columns[ci].constraint.clone()));
        let bound = conj.bind(current.schema())?;
        for &ci in &ready {
            applied[ci] = true;
        }
        filter_rows(&current, &bound, ctx, threads)
    }
}

/// Minimum rows per worker before a chunk loop goes parallel: below
/// this, thread spawn/join dominates the work (the 0.95× "speedup" the
/// depend bench once recorded) and the loop runs inline instead.
const PAR_MIN_ROWS_PER_WORKER: usize = 4096;

/// Extend every row of `current` with every value in `vals`, keeping the
/// candidates that satisfy `pred` (bound against `current ++ new column`).
fn extend_filter<C: EvalContext + Sync>(
    current: &Relation,
    out_schema: &Schema,
    vals: &[Value],
    pred: &BoundExpr,
    ctx: &C,
    threads: usize,
) -> Result<Relation> {
    let arity = current.arity();
    let run_chunk = |rows: std::ops::Range<usize>| -> Result<Vec<Value>> {
        let mut data: Vec<Value> = Vec::new();
        let mut cand: Vec<Value> = vec![Value::Null; arity + 1];
        for i in rows {
            let r = current.row(i);
            cand[..arity].copy_from_slice(r);
            for &v in vals {
                cand[arity] = v;
                if pred.eval_bool(&cand, ctx)? {
                    data.extend_from_slice(&cand);
                }
            }
        }
        Ok(data)
    };

    let n = current.len();
    let mut out = Relation::new(out_schema.clone());
    // Spawn-cost guard: give each worker at least PAR_MIN_ROWS_PER_WORKER
    // rows, degrading to fewer workers (or an inline run) on small
    // inputs. The chunk-order merge keeps the output identical either way.
    let workers = threads.max(1).min(n / PAR_MIN_ROWS_PER_WORKER).max(1);
    if workers <= 1 {
        let data = run_chunk(0..n)?;
        for chunk in data.chunks_exact(arity + 1) {
            out.push_row_unchecked(chunk);
        }
        return Ok(out);
    }

    let chunk = n.div_ceil(workers);
    let results: Vec<Result<Vec<Value>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                // Clamp the start too: with ceil-division the trailing
                // worker's nominal start can exceed `n`; it must get an
                // empty range, never an out-of-bounds one.
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                let run = &run_chunk;
                s.spawn(move || run(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("solver worker panicked"))
            .collect()
    });
    for r in results {
        let data = r?;
        for chunk in data.chunks_exact(arity + 1) {
            out.push_row_unchecked(chunk);
        }
    }
    Ok(out)
}

/// Keep the rows of `rel` satisfying `pred` (parallel when large).
fn filter_rows<C: EvalContext + Sync>(
    rel: &Relation,
    pred: &BoundExpr,
    ctx: &C,
    threads: usize,
) -> Result<Relation> {
    let arity = rel.arity();
    let n = rel.len();
    let run_chunk = |rows: std::ops::Range<usize>| -> Result<Vec<Value>> {
        let mut data = Vec::new();
        for i in rows {
            let r = rel.row(i);
            if pred.eval_bool(r, ctx)? {
                data.extend_from_slice(r);
            }
        }
        Ok(data)
    };
    let mut out = Relation::new(rel.schema().clone());
    let workers = threads.max(1).min(n / PAR_MIN_ROWS_PER_WORKER).max(1);
    if workers <= 1 {
        let data = run_chunk(0..n)?;
        for chunk in data.chunks_exact(arity.max(1)) {
            out.push_row_unchecked(chunk);
        }
        return Ok(out);
    }
    let chunk = n.div_ceil(workers);
    let results: Vec<Result<Vec<Value>>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let lo = (t * chunk).min(n);
                let hi = ((t + 1) * chunk).min(n);
                let run = &run_chunk;
                s.spawn(move || run(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("solver worker panicked"))
            .collect()
    });
    for r in results {
        let data = r?;
        for chunk in data.chunks_exact(arity.max(1)) {
            out.push_row_unchecked(chunk);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::SetContext;

    fn vals(names: &[&str]) -> Vec<Value> {
        names.iter().map(|n| Value::sym(n)).collect()
    }

    /// The paper's Figure-3 miniature: readex transaction at D with 3
    /// inputs and 2 of the outputs.
    fn mini_spec() -> TableSpec {
        let mut spec = TableSpec::new("Dmini");
        spec.push(ColumnDef::input(
            "inmsg",
            vals(&["readex", "data", "idone"]),
            Expr::True,
        ));
        spec.push(ColumnDef::input(
            "dirst",
            vals(&["I", "SI", "Busy-sd", "Busy-s", "Busy-d"]),
            // Legal input combinations only.
            crate::parser::parse_expr(
                "inmsg = readex ? dirst in (I, SI) : \
                 (inmsg = data ? dirst in (\"Busy-sd\", \"Busy-d\") : dirst in (\"Busy-sd\", \"Busy-s\"))",
            )
            .unwrap(),
        ));
        spec.push(ColumnDef::input(
            "dirpv",
            vals(&["zero", "one", "gone"]),
            crate::parser::parse_expr(
                "dirst = I ? dirpv = zero : (dirst = SI ? dirpv in (one, gone) : dirpv in (zero, one, gone))",
            )
            .unwrap(),
        ));
        spec.push(ColumnDef::output(
            "remmsg",
            {
                let mut v = vals(&["sinv"]);
                v.push(Value::Null);
                v
            },
            crate::parser::parse_expr(
                "inmsg = readex and dirst = SI ? remmsg = sinv : remmsg = NULL",
            )
            .unwrap(),
        ));
        spec.push(ColumnDef::output(
            "nxtdirst",
            vals(&["MESI", "Busy-sd", "Busy-s", "Busy-d", "I"]),
            crate::parser::parse_expr(
                "inmsg = readex ? (dirst = SI ? nxtdirst = \"Busy-sd\" : nxtdirst = \"Busy-d\") : \
                 (inmsg = data ? (dirst = \"Busy-sd\" ? nxtdirst = \"Busy-s\" : nxtdirst = MESI) : \
                 (dirst = \"Busy-sd\" ? nxtdirst = \"Busy-d\" : nxtdirst = MESI))",
            )
            .unwrap(),
        ));
        spec
    }

    #[test]
    fn incremental_generates_expected_rows() {
        let (rel, stats) = mini_spec().generate_default().unwrap();
        // Input combos: readex×(I:zero | SI:one | SI:gone)=3, data×(Busy-sd,Busy-d)×3pv=6,
        // idone×(Busy-sd,Busy-s)×3pv=6 → 15 rows; outputs are functional.
        assert_eq!(rel.len(), 15);
        assert_eq!(rel.arity(), 5);
        assert_eq!(stats.per_column.len(), 5);
        // readex+SI rows must emit sinv.
        for r in rel.rows() {
            let is_rx_si = r[0] == Value::sym("readex") && r[1] == Value::sym("SI");
            assert_eq!(r[3] == Value::sym("sinv"), is_rx_si);
        }
    }

    #[test]
    fn monolithic_equals_incremental() {
        let spec = mini_spec();
        let ctx = SetContext::new();
        let (mono, mstats) = spec.generate(GenMode::Monolithic, &ctx).unwrap();
        let (inc, istats) = spec.generate(GenMode::Incremental, &ctx).unwrap();
        assert!(mono.set_eq(&inc), "monolithic and incremental differ");
        // The monolithic walk inspects the full cross product.
        assert_eq!(mstats.candidates, (3 * 5 * 3 * 2 * 5) as u64);
        // Incremental inspects far fewer candidates.
        assert!(istats.candidates < mstats.candidates);
    }

    #[test]
    fn parallel_equals_sequential() {
        let spec = mini_spec();
        let ctx = SetContext::new();
        let (seq, _) = spec.generate(GenMode::Incremental, &ctx).unwrap();
        let (par, _) = spec
            .generate(GenMode::IncrementalParallel { threads: 4 }, &ctx)
            .unwrap();
        // Same rows, same order (chunks concatenated in order).
        assert!(seq.set_eq(&par));
    }

    #[test]
    fn inconsistent_constraints_give_zero_rows() {
        // The paper: "an inconsistent set of column constraints results
        // in D having zero rows".
        let mut spec = TableSpec::new("bad");
        spec.push(ColumnDef::input("a", vals(&["x"]), Expr::True));
        spec.push(ColumnDef::input(
            "b",
            vals(&["y"]),
            crate::parser::parse_expr("a = x and not a = x").unwrap(),
        ));
        let (rel, _) = spec.generate_default().unwrap();
        assert_eq!(rel.len(), 0);
    }

    #[test]
    fn empty_column_table_rejected() {
        let mut spec = TableSpec::new("bad");
        spec.push(ColumnDef::input("a", vec![], Expr::True));
        assert!(spec.generate_default().is_err());
    }

    #[test]
    fn no_columns_rejected() {
        let spec = TableSpec::new("empty");
        assert!(spec.generate_default().is_err());
    }

    #[test]
    fn named_sets_usable_in_constraints() {
        let mut ctx = SetContext::new();
        ctx.define("isrequest", [Value::sym("readex")]);
        let mut spec = TableSpec::new("t");
        spec.push(ColumnDef::input(
            "m",
            vals(&["readex", "data"]),
            crate::parser::parse_expr("isrequest(m)").unwrap(),
        ));
        let (rel, _) = spec.generate(GenMode::Incremental, &ctx).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.row(0)[0], Value::sym("readex"));
    }

    #[test]
    fn unknown_column_in_constraint_fails_validation() {
        let mut spec = TableSpec::new("t");
        spec.push(ColumnDef::input(
            "a",
            vals(&["x"]),
            Expr::Col(Sym::intern("nonexistent")).ternary(Expr::True, Expr::True),
        ));
        assert!(spec.validate().is_err());
    }

    #[test]
    fn stats_track_shrinking_intermediates() {
        let (_, stats) = mini_spec().generate_default().unwrap();
        // After dirst constraint is applied the intermediate must be
        // smaller than the unconstrained 3×5 product.
        let after_dirst = stats.per_column[1].1;
        assert!(after_dirst < 15, "early pruning failed: {after_dirst}");
        assert!(stats.rows == 15);
        assert!(stats.columns == 5);
    }
}
