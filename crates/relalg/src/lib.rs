//! # `ccsql-relalg` — a from-scratch in-memory relational engine
//!
//! This crate is the substrate that plays the role Oracle 8 played in
//! *Subramaniam, "Early Error Detection in Industrial Strength Cache
//! Coherence Protocols Using SQL", IPPS 2003*: a relational database with
//!
//! * named tables of interned, typed values ([`Relation`], [`Database`]),
//! * the relational algebra the paper relies on — selection, projection,
//!   cross product, equi-join, union, difference, distinct ([`ops`]),
//! * a parser for the SQL subset and the ternary *column constraint*
//!   expressions the paper writes its specifications in ([`parse_query`],
//!   [`parse_expr`]),
//! * the finite-domain **constraint solver** that turns column tables +
//!   column constraints into controller tables, in both the monolithic
//!   (full cross product) and incremental (column-at-a-time) modes the
//!   paper measures ([`solver`]),
//! * and plain-text / CSV / markdown report generation ([`report`]).
//!
//! ## NULL semantics
//!
//! Unlike ANSI SQL, the paper uses `NULL` as an ordinary *marker value*: a
//! don't-care on input columns and a no-op on output columns. Accordingly
//! [`Value::Null`] compares equal to itself and participates in joins and
//! `DISTINCT` like any other value.
//!
//! ## Quick example
//!
//! ```
//! use ccsql_relalg::{Database, Value};
//!
//! let mut db = Database::new();
//! db.create_table("v", &["m", "s", "d", "vc"]).unwrap();
//! db.insert("v", &[Value::sym("readex"), Value::sym("local"),
//!                  Value::sym("home"), Value::sym("VC0")]).unwrap();
//! let r = db.query("select m, vc from v where s = \"local\"").unwrap();
//! assert_eq!(r.len(), 1);
//! ```

pub mod columnar;
pub mod compile;
pub mod error;
pub mod expr;
pub mod index;
pub mod ops;
pub mod parser;
pub mod relation;
pub mod report;
pub mod schema;
pub mod solver;
pub mod specfile;
pub mod symbol;
pub mod value;

mod engine;

pub use columnar::ColumnarRelation;
pub use compile::{compile_constraint, Program};
pub use engine::{Database, NamedSet};
pub use error::{Error, Result, Span};
pub use expr::{BoundExpr, EvalContext, Expr};
pub use parser::{parse_expr, parse_query, Query};
pub use relation::{Relation, RowRef};
pub use schema::Schema;
pub use solver::{ColumnDef, GenMode, GenOptions, GenStats, GenStep, TableSpec};
pub use specfile::{parse_specfile, SpecFile, SpecMeta};
pub use symbol::Sym;
pub use value::Value;
