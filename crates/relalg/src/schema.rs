//! Relation schemas: ordered, named columns with fast name lookup.

use crate::error::{Error, Result};
use crate::symbol::Sym;
use std::collections::HashMap;
use std::fmt;

/// An ordered list of column names with O(1) name→index lookup.
///
/// Column names are interned [`Sym`]s; duplicate names are permitted only
/// through explicit qualification (the engine qualifies join results as
/// `alias.col` when needed), so plain schemas reject duplicates.
#[derive(Clone, PartialEq, Eq)]
pub struct Schema {
    cols: Vec<Sym>,
    by_name: HashMap<Sym, usize>,
}

impl Schema {
    /// Build a schema from column names. Errors on duplicates.
    pub fn new<I, S>(names: I) -> Result<Schema>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut cols = Vec::new();
        let mut by_name = HashMap::new();
        for n in names {
            let s = Sym::intern(n.as_ref());
            if by_name.insert(s, cols.len()).is_some() {
                return Err(Error::SchemaMismatch(format!(
                    "duplicate column name: {}",
                    s
                )));
            }
            cols.push(s);
        }
        Ok(Schema { cols, by_name })
    }

    /// Schema from already-interned names. Errors on duplicates.
    pub fn from_syms(names: &[Sym]) -> Result<Schema> {
        let mut cols = Vec::with_capacity(names.len());
        let mut by_name = HashMap::with_capacity(names.len());
        for &s in names {
            if by_name.insert(s, cols.len()).is_some() {
                return Err(Error::SchemaMismatch(format!(
                    "duplicate column name: {}",
                    s
                )));
            }
            cols.push(s);
        }
        Ok(Schema { cols, by_name })
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// Column names in order.
    pub fn columns(&self) -> &[Sym] {
        &self.cols
    }

    /// Index of a column by name.
    pub fn index_of(&self, name: Sym) -> Option<usize> {
        self.by_name.get(&name).copied()
    }

    /// Index of a column by string name.
    pub fn index_of_str(&self, name: &str) -> Option<usize> {
        self.index_of(Sym::intern(name))
    }

    /// Like [`Self::index_of`] but with a contextual error.
    pub fn require(&self, name: Sym, ctx: &str) -> Result<usize> {
        self.index_of(name)
            .ok_or_else(|| Error::NoSuchColumn(name.to_string(), ctx.to_string()))
    }

    /// True if `other` has the same column names in the same order.
    pub fn same_as(&self, other: &Schema) -> bool {
        self.cols == other.cols
    }

    /// Concatenate two schemas (for cross products / joins). On a name
    /// clash, right-hand columns are prefixed with `prefix.`.
    pub fn concat(&self, other: &Schema, prefix: &str) -> Result<Schema> {
        let mut names: Vec<String> = self.cols.iter().map(|c| c.to_string()).collect();
        for c in &other.cols {
            if self.by_name.contains_key(c) {
                names.push(format!("{prefix}.{c}"));
            } else {
                names.push(c.to_string());
            }
        }
        Schema::new(names)
    }

    /// New schema that is a projection onto `indices`, preserving order
    /// and permitting repeats (repeats are renamed `name#k`).
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut names: Vec<String> = Vec::with_capacity(indices.len());
        let mut seen: HashMap<Sym, usize> = HashMap::new();
        for &i in indices {
            let base = self.cols[i];
            let k = seen.entry(base).or_insert(0);
            if *k == 0 {
                names.push(base.to_string());
            } else {
                names.push(format!("{base}#{k}"));
            }
            *k += 1;
        }
        Schema::new(names)
    }

    /// Rename one column, returning the new schema.
    pub fn rename(&self, from: Sym, to: &str) -> Result<Schema> {
        let idx = self.require(from, "rename")?;
        let names: Vec<String> = self
            .cols
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == idx {
                    to.to_string()
                } else {
                    c.to_string()
                }
            })
            .collect();
        Schema::new(names)
    }
}

impl fmt::Debug for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Schema(")?;
        for (i, c) in self.cols.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_order() {
        let s = Schema::new(["inmsg", "dirst", "dirpv"]).unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of_str("dirst"), Some(1));
        assert_eq!(s.index_of_str("nope"), None);
        assert_eq!(s.columns()[2].as_str(), "dirpv");
    }

    #[test]
    fn duplicates_rejected() {
        assert!(Schema::new(["a", "b", "a"]).is_err());
    }

    #[test]
    fn concat_prefixes_clashes() {
        let a = Schema::new(["m", "s"]).unwrap();
        let b = Schema::new(["s", "d"]).unwrap();
        let c = a.concat(&b, "t2").unwrap();
        let names: Vec<&str> = c.columns().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, ["m", "s", "t2.s", "d"]);
    }

    #[test]
    fn project_handles_repeats() {
        let s = Schema::new(["a", "b"]).unwrap();
        let p = s.project(&[1, 1, 0]).unwrap();
        let names: Vec<&str> = p.columns().iter().map(|s| s.as_str()).collect();
        assert_eq!(names, ["b", "b#1", "a"]);
    }

    #[test]
    fn rename_works() {
        let s = Schema::new(["a", "b"]).unwrap();
        let r = s.rename(Sym::intern("b"), "c").unwrap();
        assert_eq!(r.index_of_str("c"), Some(1));
        assert_eq!(r.index_of_str("b"), None);
    }

    #[test]
    fn require_gives_contextual_error() {
        let s = Schema::new(["a"]).unwrap();
        let e = s.require(Sym::intern("zz"), "test-ctx").unwrap_err();
        assert_eq!(
            e,
            Error::NoSuchColumn("zz".to_string(), "test-ctx".to_string())
        );
    }
}
