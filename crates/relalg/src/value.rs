//! The value domain of the engine, plus the process-global **value-id
//! pool** the compiled constraint path runs on.
//!
//! [`Value`] is 16 bytes and `Copy`; the interpreted evaluator works on
//! rows of `Value`s directly. The bytecode engine
//! ([`crate::compile::Program`]) instead works on dense `u32` value ids:
//! every distinct `Value` is interned once into a global pool (mirroring
//! the [`Sym`] string interner) and compared, hashed and stored as a
//! single word. Interning is injective, so id equality is value
//! equality — exactly the semantics of the interpreter's `=`/`!=`,
//! including `NULL = NULL` being true.
//!
//! `Bool(false)`, `Bool(true)` and `Null` are interned eagerly, giving
//! the bytecode engine stable ids ([`FALSE_VID`], [`TRUE_VID`],
//! [`NULL_VID`]) for its boolean results and jump tests.

use crate::symbol::Sym;
use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A single cell value.
///
/// The protocol tables of the paper range over small enumerated domains
/// (message names, states, channel ids) plus the special `NULL` marker,
/// so the engine supports interned symbols, small integers, booleans and
/// `NULL`. All variants are `Copy`.
///
/// **NULL semantics.** Following the paper — where `NULL` denotes
/// *don't-care* on input columns and *no-op* on output columns — `Null`
/// is an ordinary value: `Null == Null` is **true** (unlike ANSI SQL
/// three-valued logic). This is what makes the paper's generation and
/// reconstruction checks work as set operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The don't-care / no-op marker.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An interned symbolic constant (e.g. `readex`, `Busy-sd`, `VC2`).
    Sym(Sym),
}

/// Value id of `Value::Bool(false)` in the global pool (seeded first).
pub const FALSE_VID: u32 = 0;
/// Value id of `Value::Bool(true)` in the global pool (seeded second).
pub const TRUE_VID: u32 = 1;
/// Value id of `Value::Null` in the global pool (seeded third).
pub const NULL_VID: u32 = 2;

struct VidPool {
    map: HashMap<Value, u32>,
    values: Vec<Value>,
}

fn vid_pool() -> &'static RwLock<VidPool> {
    static POOL: OnceLock<RwLock<VidPool>> = OnceLock::new();
    POOL.get_or_init(|| {
        // Seed order fixes FALSE_VID/TRUE_VID/NULL_VID.
        let values = vec![Value::Bool(false), Value::Bool(true), Value::Null];
        let map = values
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i as u32))
            .collect();
        RwLock::new(VidPool { map, values })
    })
}

/// Snapshot of the global id→value decode table (index by id). Ids
/// interned after the snapshot are absent; take it after interning the
/// values you need to decode.
pub fn vid_decode_table() -> Vec<Value> {
    vid_pool().read().unwrap().values.clone()
}

impl Value {
    /// Shorthand for `Value::Sym(Sym::intern(s))`.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Sym::intern(s))
    }

    /// Intern into the global value pool, returning this value's dense
    /// id. Idempotent; id equality is value equality.
    pub fn vid(self) -> u32 {
        {
            let g = vid_pool().read().unwrap();
            if let Some(&id) = g.map.get(&self) {
                return id;
            }
        }
        let mut g = vid_pool().write().unwrap();
        if let Some(&id) = g.map.get(&self) {
            return id;
        }
        let id = g.values.len() as u32;
        g.values.push(self);
        g.map.insert(self, id);
        id
    }

    /// Decode a pool id back to its value. Panics on an id that was
    /// never returned by [`Value::vid`].
    pub fn from_vid(id: u32) -> Value {
        vid_pool().read().unwrap().values[id as usize]
    }

    /// True iff this is the `NULL` marker.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// The symbol inside, if any.
    pub fn as_sym(self) -> Option<Sym> {
        match self {
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, if any.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Render for reports: `NULL` for the marker, bare text otherwise.
    pub fn display(self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => f.write_str(s.as_str()),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{:?}", s.as_str()),
        }
    }
}

impl From<Sym> for Value {
    fn from(s: Sym) -> Value {
        Value::Sym(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::sym(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_equals_null() {
        // The paper's NULL is a marker value, not SQL unknown.
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null.is_null());
        assert!(!Value::sym("NULLish").is_null());
    }

    #[test]
    fn value_is_small_and_copy() {
        // Keep cells cheap to copy: rows are flat Vec<Value>.
        assert!(std::mem::size_of::<Value>() <= 16);
        let v = Value::sym("data");
        let w = v; // Copy
        assert_eq!(v, w);
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::sym("Busy-sd").to_string(), "Busy-sd");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::sym("x").as_sym(), Some(Sym::intern("x")));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::Null.as_sym(), None);
        assert_eq!(Value::Int(1).as_bool(), None);
    }

    #[test]
    fn vid_interning_is_injective_and_stable() {
        assert_eq!(Value::Bool(false).vid(), FALSE_VID);
        assert_eq!(Value::Bool(true).vid(), TRUE_VID);
        assert_eq!(Value::Null.vid(), NULL_VID);
        let a = Value::sym("vid-test-a").vid();
        let b = Value::sym("vid-test-b").vid();
        assert_ne!(a, b);
        assert_eq!(a, Value::sym("vid-test-a").vid());
        assert_eq!(Value::from_vid(a), Value::sym("vid-test-a"));
        assert_eq!(Value::from_vid(NULL_VID), Value::Null);
        let table = vid_decode_table();
        assert_eq!(table[a as usize], Value::sym("vid-test-a"));
        assert_eq!(Value::Int(-3).vid(), Value::Int(-3).vid());
        assert_ne!(Value::Int(0).vid(), Value::sym("0").vid());
    }

    #[test]
    fn ordering_groups_variants() {
        // Null < Bool < Int < Sym, deterministic for sorted reports.
        let mut vs = [
            Value::sym("b"),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::sym("a"),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Int(3));
        assert_eq!(vs[3], Value::sym("a"));
        assert_eq!(vs[4], Value::sym("b"));
    }
}
