//! The value domain of the engine.

use crate::symbol::Sym;
use std::fmt;

/// A single cell value.
///
/// The protocol tables of the paper range over small enumerated domains
/// (message names, states, channel ids) plus the special `NULL` marker,
/// so the engine supports interned symbols, small integers, booleans and
/// `NULL`. All variants are `Copy`.
///
/// **NULL semantics.** Following the paper — where `NULL` denotes
/// *don't-care* on input columns and *no-op* on output columns — `Null`
/// is an ordinary value: `Null == Null` is **true** (unlike ANSI SQL
/// three-valued logic). This is what makes the paper's generation and
/// reconstruction checks work as set operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The don't-care / no-op marker.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An interned symbolic constant (e.g. `readex`, `Busy-sd`, `VC2`).
    Sym(Sym),
}

impl Value {
    /// Shorthand for `Value::Sym(Sym::intern(s))`.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Sym::intern(s))
    }

    /// True iff this is the `NULL` marker.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null)
    }

    /// The symbol inside, if any.
    pub fn as_sym(self) -> Option<Sym> {
        match self {
            Value::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, if any.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            _ => None,
        }
    }

    /// The boolean inside, if any.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Render for reports: `NULL` for the marker, bare text otherwise.
    pub fn display(self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => f.write_str(s.as_str()),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{:?}", s.as_str()),
        }
    }
}

impl From<Sym> for Value {
    fn from(s: Sym) -> Value {
        Value::Sym(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::sym(s)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_equals_null() {
        // The paper's NULL is a marker value, not SQL unknown.
        assert_eq!(Value::Null, Value::Null);
        assert!(Value::Null.is_null());
        assert!(!Value::sym("NULLish").is_null());
    }

    #[test]
    fn value_is_small_and_copy() {
        // Keep cells cheap to copy: rows are flat Vec<Value>.
        assert!(std::mem::size_of::<Value>() <= 16);
        let v = Value::sym("data");
        let w = v; // Copy
        assert_eq!(v, w);
    }

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::sym("Busy-sd").to_string(), "Busy-sd");
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::sym("x").as_sym(), Some(Sym::intern("x")));
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::Null.as_sym(), None);
        assert_eq!(Value::Int(1).as_bool(), None);
    }

    #[test]
    fn ordering_groups_variants() {
        // Null < Bool < Int < Sym, deterministic for sorted reports.
        let mut vs = [
            Value::sym("b"),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::sym("a"),
        ];
        vs.sort();
        assert_eq!(vs[0], Value::Null);
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Int(3));
        assert_eq!(vs[3], Value::sym("a"));
        assert_eq!(vs[4], Value::sym("b"));
    }
}
