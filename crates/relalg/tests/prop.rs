//! Property-based tests for the relational engine: algebraic laws of
//! the operators, solver consistency, and expression semantics.

// Gated out of the offline default build: proptest is an external
// dependency the build environment cannot resolve. Restore the
// proptest dev-dependency and run with `--features slow-tests` to
// re-enable.
#![cfg(feature = "slow-tests")]

use ccsql_relalg::expr::{NoContext, SetContext};
use ccsql_relalg::solver::ColumnDef;
use ccsql_relalg::{ops, parse_expr, report, Expr, GenMode, Relation, TableSpec, Value};
use proptest::prelude::*;

const SYMS: &[&str] = &["a", "b", "c", "d", "readex", "idone", "NULLX"];

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0..SYMS.len()).prop_map(|i| Value::sym(SYMS[i])),
        (-3i64..10).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
    ]
}

fn relation_strategy(cols: usize, max_rows: usize) -> impl Strategy<Value = Relation> {
    prop::collection::vec(prop::collection::vec(value_strategy(), cols), 0..max_rows).prop_map(
        move |rows| {
            let names: Vec<String> = (0..cols).map(|i| format!("c{i}")).collect();
            let mut rel = Relation::with_columns(names).unwrap();
            for r in rows {
                rel.push_row(&r).unwrap();
            }
            rel
        },
    )
}

/// Parser-shaped random expressions (comparison operands are identifiers
/// and literals, as the grammar produces).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let ident = (0..4usize)
        .prop_map(|i| Expr::Ident(ccsql_relalg::Sym::intern(["c0", "c1", "xx", "busy_q"][i])));
    let lit = prop_oneof![
        (0..SYMS.len()).prop_map(|i| Expr::Lit(Value::sym(SYMS[i]))),
        (-5i64..20).prop_map(|n| Expr::Lit(Value::Int(n))),
        Just(Expr::Lit(Value::Null)),
    ];
    let leaf = prop_oneof![
        (ident.clone(), lit.clone()).prop_map(|(a, b)| Expr::Eq(Box::new(a), Box::new(b))),
        (ident.clone(), lit).prop_map(|(a, b)| Expr::Ne(Box::new(a), Box::new(b))),
        (
            ident,
            prop::collection::vec((0..SYMS.len()).prop_map(|i| Value::sym(SYMS[i])), 1..4)
        )
            .prop_map(|(a, vs)| Expr::In(Box::new(a), vs)),
        Just(Expr::True),
        Just(Expr::False),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.clone().prop_map(|e| e.negate()),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, t, f)| c.ternary(t, f)),
            inner.prop_map(|e| Expr::Call(ccsql_relalg::Sym::intern("isrequest"), Box::new(e))),
        ]
    })
}

proptest! {
    #[test]
    fn display_parse_round_trip(e in expr_strategy()) {
        let printed = e.to_string();
        let reparsed = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("unparseable {printed:?}: {err}"));
        prop_assert_eq!(&reparsed, &e, "printed: {}", printed);
    }

    #[test]
    fn distinct_is_idempotent(rel in relation_strategy(3, 30)) {
        let once = rel.distinct();
        let twice = once.distinct();
        prop_assert!(once.set_eq(&twice));
        prop_assert_eq!(once.len(), twice.len());
    }

    #[test]
    fn distinct_preserves_membership(rel in relation_strategy(2, 30)) {
        let d = rel.distinct();
        for r in rel.rows() {
            prop_assert!(d.contains_row(r));
        }
        prop_assert!(d.len() <= rel.len());
    }

    #[test]
    fn sorted_is_a_permutation(rel in relation_strategy(2, 30)) {
        let s = rel.sorted();
        prop_assert_eq!(s.len(), rel.len());
        prop_assert!(s.set_eq(&rel) || rel.is_empty());
        // And sorting is stable under repetition.
        let s2 = s.sorted();
        prop_assert!(s.rows().eq(s2.rows()));
    }

    #[test]
    fn union_is_commutative_as_sets(a in relation_strategy(2, 20), b in relation_strategy(2, 20)) {
        let ab = ops::union(&a, &b).unwrap();
        let ba = ops::union(&b, &a).unwrap();
        prop_assert!(ab.set_eq(&ba));
        prop_assert_eq!(ab.len(), a.len() + b.len());
    }

    #[test]
    fn difference_and_intersection_partition(a in relation_strategy(2, 25), b in relation_strategy(2, 25)) {
        let diff = ops::difference(&a, &b).unwrap();
        let inter = ops::intersect(&a, &b).unwrap();
        // diff ∪ inter ≡ a (as sets).
        let rejoined = ops::union(&diff, &inter).unwrap();
        prop_assert!(rejoined.distinct().set_eq(&a.distinct()));
        // diff ∩ b = ∅.
        prop_assert!(ops::intersect(&diff, &b).unwrap().is_empty());
    }

    #[test]
    fn select_partitions_rows(rel in relation_strategy(2, 30)) {
        let p = Expr::col_eq("c0", "a");
        let yes = ops::select(&rel, &p, &NoContext).unwrap();
        let no = ops::select(&rel, &p.clone().negate(), &NoContext).unwrap();
        prop_assert_eq!(yes.len() + no.len(), rel.len());
        for r in yes.rows() {
            prop_assert_eq!(r[0], Value::sym("a"));
        }
    }

    #[test]
    fn projection_keeps_row_count(rel in relation_strategy(3, 25)) {
        let p = ops::project_str(&rel, &["c2", "c0"]).unwrap();
        prop_assert_eq!(p.len(), rel.len());
        prop_assert_eq!(p.arity(), 2);
        for (orig, proj) in rel.rows().zip(p.rows()) {
            prop_assert_eq!(orig[2], proj[0]);
            prop_assert_eq!(orig[0], proj[1]);
        }
    }

    #[test]
    fn cross_product_cardinality(a in relation_strategy(1, 12), b in relation_strategy(2, 12)) {
        let c = ops::cross(&a, &b, "r").unwrap();
        prop_assert_eq!(c.len(), a.len() * b.len());
        prop_assert_eq!(c.arity(), 3);
    }

    #[test]
    fn equi_join_subset_of_cross(a in relation_strategy(2, 15), b in relation_strategy(2, 15)) {
        let j = ops::equi_join(&a, &b, &[("c0", "c0")], "r").unwrap();
        for r in j.rows() {
            // Join key matched (left c0 == right c0 at position 2).
            prop_assert_eq!(r[0], r[2]);
        }
        prop_assert!(j.len() <= a.len() * b.len());
    }

    #[test]
    fn ternary_desugars_correctly(
        c in any::<bool>(),
        t in any::<bool>(),
        f in any::<bool>(),
    ) {
        // c ? t : f  ≡  (c ∧ t) ∨ (¬c ∧ f) for all boolean assignments.
        let schema = ccsql_relalg::Schema::new(["x", "y", "z"]).unwrap();
        let e = Expr::col_eq("x", "T")
            .ternary(Expr::col_eq("y", "T"), Expr::col_eq("z", "T"));
        let row = |b: bool| Value::sym(if b { "T" } else { "F" });
        let bound = e.bind(&schema).unwrap();
        let got = bound.eval_bool(&[row(c), row(t), row(f)], &NoContext).unwrap();
        prop_assert_eq!(got, if c { t } else { f });
    }

    #[test]
    fn csv_row_count_round_trips(rel in relation_strategy(2, 20)) {
        let csv = report::csv(&rel);
        prop_assert_eq!(csv.trim_end().lines().count(), rel.len() + 1);
        let md = report::markdown_table(&rel);
        prop_assert_eq!(md.trim_end().lines().count(), rel.len() + 2);
    }

    #[test]
    fn solver_modes_agree_on_random_specs(
        vals_a in prop::collection::vec(0usize..4, 1..4),
        vals_b in prop::collection::vec(0usize..4, 1..4),
        pin in 0usize..4,
    ) {
        // Two columns over random sub-domains with a coupling constraint.
        let dom = ["p", "q", "r", "s"];
        let mk = |ix: &[usize]| -> Vec<Value> {
            let mut v: Vec<Value> = ix.iter().map(|&i| Value::sym(dom[i])).collect();
            v.sort();
            v.dedup();
            v
        };
        let mut spec = TableSpec::new("t");
        spec.push(ColumnDef::input("a", mk(&vals_a), Expr::True));
        spec.push(ColumnDef::input(
            "b",
            mk(&vals_b),
            parse_expr(&format!("a = \"{}\" ? b = \"{}\" : true", dom[pin], dom[pin])).unwrap(),
        ));
        let ctx = SetContext::new();
        let (mono, _) = spec.generate(GenMode::Monolithic, &ctx).unwrap();
        let (inc, _) = spec.generate(GenMode::Incremental, &ctx).unwrap();
        let (par, _) = spec.generate(GenMode::IncrementalParallel { threads: 3 }, &ctx).unwrap();
        prop_assert!(mono.set_eq(&inc));
        prop_assert!(inc.set_eq(&par));
    }

    #[test]
    fn parser_handles_arbitrary_in_lists(items in prop::collection::vec(0usize..SYMS.len(), 1..5)) {
        let list: Vec<String> = items.iter().map(|&i| format!("\"{}\"", SYMS[i])).collect();
        let sql = format!("c0 in ({})", list.join(", "));
        let e = parse_expr(&sql).unwrap();
        let schema = ccsql_relalg::Schema::new(["c0"]).unwrap();
        let b = e.bind(&schema).unwrap();
        for (i, s) in SYMS.iter().enumerate() {
            let expect = items.contains(&i);
            prop_assert_eq!(
                b.eval_bool(&[Value::sym(s)], &NoContext).unwrap(),
                expect
            );
        }
    }
}
