//! Differential tests for the bytecode constraint engine.
//!
//! The compiled solver path is only sound if [`Program`] evaluation is
//! *observably identical* to the tree-walking interpreter — same
//! booleans, same errors, in the same places. proptest is unavailable
//! offline, so this is a self-contained splitmix64 property suite:
//! deterministic random expressions × random rows, comparing the full
//! `Result<bool, Error>` of both engines, plus golden end-to-end checks
//! that the shipped spec files solve byte-identically with compilation
//! on and off.

use ccsql_obs::SplitMix64;
use ccsql_relalg::compile::compile_constraint;
use ccsql_relalg::expr::{NoContext, SetContext};
use ccsql_relalg::{parse_specfile, specfile, Expr, Program, Schema, Sym, Value};

const SYMS: &[&str] = &["a", "b", "readex", "idone", "Busy-sd"];
const COLS: &[&str] = &["c0", "c1", "c2", "c3"];

fn gen_value(r: &mut SplitMix64) -> Value {
    match r.gen_range_u32(5) {
        0 => Value::Null,
        1 => Value::Bool(r.gen_bool(0.5)),
        2 => Value::Int(r.gen_range_u64(7) as i64 - 2),
        _ => Value::sym(SYMS[r.gen_range_u32(SYMS.len() as u32) as usize]),
    }
}

fn gen_row(r: &mut SplitMix64) -> Vec<Value> {
    COLS.iter().map(|_| gen_value(r)).collect()
}

/// A comparison operand: a column, a non-column identifier (binds to a
/// symbolic literal) or a literal.
fn gen_operand(r: &mut SplitMix64) -> Expr {
    match r.gen_range_u32(4) {
        0 | 1 => Expr::Ident(Sym::intern(
            COLS[r.gen_range_u32(COLS.len() as u32) as usize],
        )),
        2 => Expr::Ident(Sym::intern("freeident")),
        _ => Expr::Lit(gen_value(r)),
    }
}

/// Random expression of bounded depth. Mostly parser-shaped boolean
/// forms, with a low-probability *bare column* leaf so the non-boolean
/// error paths (`NotBoolean` in `not`/`and`/`or`/ternary and at the
/// root) get exercised too.
fn gen_expr(r: &mut SplitMix64, depth: u32) -> Expr {
    if depth == 0 || r.gen_bool(0.3) {
        return match r.gen_range_u32(10) {
            0 => Expr::True,
            1 => Expr::False,
            2 => gen_operand(r), // bare operand: usually a type error
            3..=5 => Expr::Eq(Box::new(gen_operand(r)), Box::new(gen_operand(r))),
            6 | 7 => Expr::Ne(Box::new(gen_operand(r)), Box::new(gen_operand(r))),
            _ => {
                let n = 1 + r.gen_range_u32(3);
                let vs = (0..n).map(|_| gen_value(r)).collect();
                Expr::In(Box::new(gen_operand(r)), vs)
            }
        };
    }
    match r.gen_range_u32(5) {
        0 => gen_expr(r, depth - 1).and(gen_expr(r, depth - 1)),
        1 => gen_expr(r, depth - 1).or(gen_expr(r, depth - 1)),
        2 => gen_expr(r, depth - 1).negate(),
        3 => gen_expr(r, depth - 1).ternary(gen_expr(r, depth - 1), gen_expr(r, depth - 1)),
        _ => Expr::Call(Sym::intern("isrequest"), Box::new(gen_expr(r, depth - 1))),
    }
}

#[test]
fn program_eval_matches_interpreter_on_random_exprs() {
    let schema = Schema::new(COLS.iter().copied()).unwrap();
    let mut ctx = SetContext::new();
    ctx.define(
        "isrequest",
        [Value::sym("readex"), Value::Bool(true), Value::Int(1)],
    );
    let mut rng = SplitMix64::new(0xB17E_C0DE);
    let mut errors = 0u32;
    for case in 0..4000u32 {
        let e = gen_expr(&mut rng, 4);
        let bound = match e.bind(&schema) {
            Ok(b) => b,
            Err(_) => continue, // unreachable: all idents resolve
        };
        let prog = Program::compile(&bound);
        for _ in 0..4 {
            let row = gen_row(&mut rng);
            // Under the defined context and (deliberately) under the
            // empty one, where every `isrequest` call errors.
            let want = bound.eval_bool(&row, &ctx);
            let got = prog.eval_row(&row, &ctx);
            assert_eq!(got, want, "case {case}: {e} over {row:?}");
            let want_nc = bound.eval_bool(&row, &NoContext);
            let got_nc = prog.eval_row(&row, &NoContext);
            assert_eq!(got_nc, want_nc, "case {case} (NoContext): {e} over {row:?}");
            if want.is_err() {
                errors += 1;
            }
            // Constant folding (the solver's actual compile pipeline)
            // must preserve every defined result.
            if let Ok(b) = want {
                let folded = compile_constraint(&e, &schema, &ctx).unwrap();
                assert_eq!(
                    folded.eval_row(&row, &ctx),
                    Ok(b),
                    "case {case} (folded): {e} over {row:?}"
                );
            }
        }
    }
    // The generator must actually reach the error paths for this suite
    // to mean anything.
    assert!(errors > 100, "only {errors} error cases generated");
}

fn spec_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../specs")
        .join(name)
}

#[test]
fn shipped_specs_solve_identically_compiled_and_interpreted() {
    for name in ["fig3.ccsql", "fig3_buggy.ccsql"] {
        let text = std::fs::read_to_string(spec_path(name)).unwrap();
        let sf = parse_specfile(&text).unwrap();
        let (compiled, cfail) = specfile::solve_specfile_with(&sf, true).unwrap();
        let (interp, ifail) = specfile::solve_specfile_with(&sf, false).unwrap();
        assert_eq!(compiled.len(), interp.len(), "{name}: row count differs");
        for (i, (a, b)) in compiled.rows().zip(interp.rows()).enumerate() {
            assert_eq!(a, b, "{name}: row {i} differs");
        }
        assert_eq!(cfail.len(), ifail.len(), "{name}: check verdicts differ");
        for ((na, ra), (nb, rb)) in cfail.iter().zip(ifail.iter()) {
            assert_eq!(na, nb);
            assert!(ra.rows().eq(rb.rows()), "{name}: witness rows differ");
        }
    }
}
