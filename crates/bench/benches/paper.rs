//! Criterion benchmarks — one group per paper artifact / measurement.
//!
//! * `generation`   — E-GEN / E-INC: controller-table generation, both
//!   solver modes on the sweep family, the full D incrementally.
//! * `invariants`   — E-INV: the ~50-invariant SQL suite.
//! * `deadlock`     — FIG4: dependency analysis + cycle detection per
//!   assignment, plus the closure ablation (E-ABL1).
//! * `hwmap`        — FIG5: ED construction, partition, reconstruction.
//! * `modelcheck`   — E-MC: explicit-state exploration by node count.
//! * `simulation`   — E-SIM: random workloads on the executing tables.

use ccsql::depend::{protocol_dependency_table, AnalysisConfig};
use ccsql::gen::GeneratedProtocol;
use ccsql::hwmap::{self, HwMapping};
use ccsql::invariants;
use ccsql::vc::VcAssignment;
use ccsql::vcg::Vcg;
use ccsql_bench::sweep_spec;
use ccsql_mc::{explore, Model};
use ccsql_protocol::topology::NodeId;
use ccsql_protocol::ProtocolSpec;
use ccsql_relalg::expr::SetContext;
use ccsql_relalg::GenMode;
use ccsql_sim::{Fig4, Mix, Schedule, Sim, SimConfig, Workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("generation");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let ctx = SetContext::new();
    for k in [2usize, 4] {
        let spec = sweep_spec(k);
        g.bench_with_input(BenchmarkId::new("monolithic", k), &spec, |b, s| {
            b.iter(|| s.generate(GenMode::Monolithic, &ctx).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("incremental", k), &spec, |b, s| {
            b.iter(|| s.generate(GenMode::Incremental, &ctx).unwrap())
        });
    }
    let proto_ctx = ProtocolSpec::eval_context();
    let d_spec = ccsql_protocol::directory::directory_spec();
    g.bench_function("full_D_incremental", |b| {
        b.iter(|| d_spec.spec.generate(GenMode::Incremental, &proto_ctx).unwrap())
    });
    g.bench_function("full_D_incremental_parallel8", |b| {
        b.iter(|| {
            d_spec
                .spec
                .generate(GenMode::IncrementalParallel { threads: 8 }, &proto_ctx)
                .unwrap()
        })
    });
    g.finish();
}

fn bench_invariants(c: &mut Criterion) {
    let mut g = c.benchmark_group("invariants");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let mut gen = GeneratedProtocol::generate_default().unwrap();
    g.bench_function("suite_of_60", |b| {
        b.iter(|| {
            let r = invariants::check_all(&mut gen.db).unwrap();
            assert!(invariants::failures(&r).is_empty());
        })
    });
    g.finish();
}

fn bench_deadlock(c: &mut Criterion) {
    let mut g = c.benchmark_group("deadlock");
    g.sample_size(10).measurement_time(Duration::from_secs(8));
    let gen = GeneratedProtocol::generate_default().unwrap();
    for v in [VcAssignment::v0(), VcAssignment::v1(), VcAssignment::v2()] {
        g.bench_with_input(BenchmarkId::new("analysis", v.name), &v, |b, v| {
            b.iter(|| {
                let t = protocol_dependency_table(&gen, v, &AnalysisConfig::default()).unwrap();
                Vcg::build(&t).cycles()
            })
        });
    }
    g.bench_function("ablation_closure_v1", |b| {
        let cfg = AnalysisConfig {
            transitive_closure: true,
            ..AnalysisConfig::default()
        };
        b.iter(|| {
            let t = protocol_dependency_table(&gen, &VcAssignment::v1(), &cfg).unwrap();
            Vcg::build(&t).cycles()
        })
    });
    g.finish();
}

fn bench_hwmap(c: &mut Criterion) {
    let mut g = c.benchmark_group("hwmap");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    let gen = GeneratedProtocol::generate_default().unwrap();
    let d = gen.table("D").unwrap().clone();
    g.bench_function("extend_ED", |b| {
        b.iter(|| hwmap::extend_table(&d).unwrap())
    });
    g.bench_function("build_and_check", |b| {
        b.iter(|| {
            let m = HwMapping::build(&gen).unwrap();
            assert!(m.check(&d).unwrap().ok());
        })
    });
    g.finish();
}

fn bench_modelcheck(c: &mut Criterion) {
    let mut g = c.benchmark_group("modelcheck");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    for nodes in [2usize, 3] {
        g.bench_with_input(BenchmarkId::new("explore", nodes), &nodes, |b, &n| {
            let m = Model {
                nodes: n,
                quota: 2,
                resp_depth: 2,
            };
            b.iter(|| explore(&m, 10_000_000))
        });
    }
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulation");
    g.sample_size(10).measurement_time(Duration::from_secs(10));
    let gen = GeneratedProtocol::generate_default().unwrap();
    g.bench_function("random_workload_2x2x100", |b| {
        b.iter(|| {
            let cfg = SimConfig {
                quads: 2,
                nodes_per_quad: 2,
                vc_capacity: 2,
                dedicated_mem_path: true,
                schedule: Schedule::Random(5),
                max_steps: 2_000_000,
            };
            let nodes: Vec<NodeId> = (0..2)
                .flat_map(|q| (0..2).map(move |n| NodeId::new(q, n)))
                .collect();
            let wl = Workload::random(&nodes, 100, 8, Mix::default(), 5);
            let mut sim = Sim::new(&gen, cfg, wl);
            let out = sim.run().unwrap();
            assert!(!out.is_deadlock());
        })
    });
    g.bench_function("fig4_replay_v1", |b| {
        b.iter(|| {
            let out = Fig4::default().replay(&gen, false).unwrap();
            assert!(out.is_deadlock());
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_invariants,
    bench_deadlock,
    bench_hwmap,
    bench_modelcheck,
    bench_simulation
);
criterion_main!(benches);
