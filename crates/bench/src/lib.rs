//! Shared helpers for the experiment harness binaries.
//!
//! Every figure and reported measurement of the paper has a binary in
//! `src/bin/` that regenerates it (see DESIGN.md's experiment index)
//! and a Criterion benchmark in `benches/paper.rs` that times it.

use ccsql::gen::GeneratedProtocol;
use ccsql_relalg::solver::ColumnDef;
use ccsql_relalg::{Expr, TableSpec, Value};

/// Print an experiment banner.
pub fn banner(id: &str, title: &str) {
    println!("==================================================================");
    println!("{id}: {title}");
    println!("==================================================================");
}

/// Generate the full protocol once (convenience for binaries).
pub fn generate() -> GeneratedProtocol {
    GeneratedProtocol::generate_default().expect("protocol generation")
}

/// A synthetic table family for the incremental-vs-monolithic sweep:
/// three coupled input columns (8 × 6 × 4 values) plus `k` functionally
/// determined output columns over 6-value domains. The monolithic cross
/// product grows as `192 · 6^k`; the incremental intermediate stays at
/// the legal-row count.
pub fn sweep_spec(k: usize) -> TableSpec {
    let dom = |prefix: &str, n: usize| -> Vec<Value> {
        (0..n)
            .map(|i| Value::sym(&format!("{prefix}{i}")))
            .collect()
    };
    let mut spec = TableSpec::new(&format!("sweep{k}"));
    spec.push(ColumnDef::input("msg", dom("m", 8), Expr::True));
    spec.push(ColumnDef::input(
        "st",
        dom("s", 6),
        // Each message is legal in two states.
        ccsql_relalg::parse_expr(
            &(0..8)
                .map(|i| format!("(msg = m{i} and st in (s{}, s{}))", i % 6, (i + 1) % 6))
                .collect::<Vec<_>>()
                .join(" or "),
        )
        .unwrap(),
    ));
    spec.push(ColumnDef::input(
        "pv",
        dom("p", 4),
        ccsql_relalg::parse_expr("st = s0 ? pv = p0 : true").unwrap(),
    ));
    for o in 0..k {
        spec.push(ColumnDef::output(
            &format!("out{o}"),
            dom("v", 6),
            // Functionally determined by the state.
            ccsql_relalg::parse_expr(
                &(0..6)
                    .map(|s| format!("(st = s{s} and out{o} = v{})", (s + o) % 6))
                    .collect::<Vec<_>>()
                    .join(" or "),
            )
            .unwrap(),
        ));
    }
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsql_relalg::expr::SetContext;
    use ccsql_relalg::GenMode;

    #[test]
    fn sweep_spec_modes_agree() {
        let ctx = SetContext::new();
        for k in [0, 2, 4] {
            let spec = sweep_spec(k);
            let (mono, ms) = spec.generate(GenMode::Monolithic, &ctx).unwrap();
            let (inc, is) = spec.generate(GenMode::Incremental, &ctx).unwrap();
            assert!(mono.set_eq(&inc), "k={k}");
            assert!(!inc.is_empty());
            assert!(ms.candidates >= is.candidates, "k={k}");
        }
    }
}
