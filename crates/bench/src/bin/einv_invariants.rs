//! E-INV — the protocol invariant suite (section 4.3).
//!
//! "All of the protocol invariants (around 50) are checked on a SUN
//! Sparc 10 within 5 minutes." Here the suite runs in milliseconds; the
//! reproduced shape is that invariant checking is *far cheaper* than
//! table generation.

use ccsql::invariants;
use std::time::Instant;

fn main() {
    ccsql_bench::banner("E-INV", "The ~50-invariant SQL suite");
    let mut gen = ccsql_bench::generate();
    let gen_time: std::time::Duration = gen.stats.values().map(|s| s.elapsed).sum();

    let t0 = Instant::now();
    let results = invariants::check_all(&mut gen.db).expect("suite");
    let check_time = t0.elapsed();

    println!("{:<28} {:>9}  description", "invariant", "status");
    println!("{}", "-".repeat(72));
    for (inv, res) in invariants::all_invariants().iter().zip(&results) {
        println!(
            "{:<28} {:>9}  {}",
            inv.name,
            if res.holds() { "ok" } else { "VIOLATED" },
            inv.description
        );
    }
    let failed = invariants::failures(&results);
    println!(
        "\n{} invariants checked in {:?} ({} violated) — table generation took {:?} \
         ({}x the checking time).",
        results.len(),
        check_time,
        failed.len(),
        gen_time,
        (gen_time.as_secs_f64() / check_time.as_secs_f64().max(1e-9)) as u64,
    );
    assert!(failed.is_empty());
}
