//! E-MC — the model-checker baseline and the state-explosion contrast.
//!
//! "Model checkers … have a lot of reasoning power and can detect such
//! deadlocks. However, to use these tools, the controller tables need
//! to be extensively abstracted to avoid the state explosion problem."
//!
//! The explicit-state exploration of even a heavily abstracted
//! single-line model grows exponentially in nodes and operation quota,
//! while the SQL analyses operate on fixed-size tables.

use ccsql::depend::{protocol_dependency_table, AnalysisConfig};
use ccsql::vc::VcAssignment;
use ccsql_mc::{explore, Model};
use std::time::Instant;

fn main() {
    ccsql_bench::banner("E-MC", "Explicit-state exploration vs SQL static analysis");
    println!(
        "{:>6} {:>6} {:>12} {:>14} {:>12}  outcome",
        "nodes", "quota", "states", "transitions", "time"
    );
    for nodes in 2..=4 {
        for quota in 1..=2 {
            let m = Model {
                nodes,
                quota,
                resp_depth: 2,
            };
            let (out, stats) = explore(&m, 30_000_000);
            println!(
                "{:>6} {:>6} {:>12} {:>14} {:>12?}  {:?}",
                nodes, quota, stats.states, stats.transitions, stats.elapsed, out
            );
        }
    }

    let gen = ccsql_bench::generate();
    let t0 = Instant::now();
    let deps =
        protocol_dependency_table(&gen, &VcAssignment::v1(), &AnalysisConfig::default()).unwrap();
    let sql_t = t0.elapsed();
    println!(
        "\nSQL deadlock analysis of the full 8-controller protocol: {} dependency rows in \
         {sql_t:?} — independent of node count (the tables are quantified over roles, not \
         concrete nodes).",
        deps.rows.len()
    );
    let gen_time: std::time::Duration = gen.stats.values().map(|s| s.elapsed).sum();
    println!("table generation for all 8 controllers: {gen_time:?}.");
}
