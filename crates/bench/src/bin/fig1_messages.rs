//! FIG1 — regenerate the Figure-1 protocol message catalogue.

use ccsql_protocol::messages::{self, MsgClass, MsgKind};

fn main() {
    ccsql_bench::banner("FIG1", "Some protocol messages (the full catalogue)");
    println!(
        "{} message types ({} requests, {} responses) — paper: \"around 50\"\n",
        messages::MESSAGES.len(),
        messages::request_names().len(),
        messages::response_names().len()
    );
    println!("{:<10} {:<9} {:<8} description", "message", "kind", "class");
    println!("{}", "-".repeat(72));
    for m in messages::MESSAGES {
        let kind = match m.kind {
            MsgKind::Request => "request",
            MsgKind::Response => "response",
        };
        let class = match m.class {
            MsgClass::Memory => "memory",
            MsgClass::Snoop => "snoop",
            MsgClass::MemCtl => "memctl",
            MsgClass::Io => "io",
            MsgClass::Special => "special",
        };
        println!("{:<10} {:<9} {:<8} {}", m.name, kind, class, m.desc);
    }
}
