//! E-ABL3 — a protocol *revision* through the whole methodology:
//! direct cache-to-cache ownership transfer for `readex@MESI`
//! (`srdex`/`xferdone`) versus the paper's invalidate-then-read-memory
//! design (`sinv`/`idone`/`mread`).
//!
//! The paper: tables "were automatically generated, updated and
//! maintained throughout the development cycle … and went through
//! several revisions". This binary regenerates the revision, reviews it
//! as a table diff, re-runs every static check, and measures the
//! dynamic effect on migratory sharing.

use ccsql::depend::{protocol_dependency_table, AnalysisConfig};
use ccsql::diff::TableDiff;
use ccsql::gen::GeneratedProtocol;
use ccsql::vc::VcAssignment;
use ccsql::vcg::Vcg;
use ccsql::{invariants, walker};
use ccsql_protocol::directory::OwnerTransfer;
use ccsql_protocol::topology::NodeId;
use ccsql_relalg::{GenMode, Sym};
use ccsql_sim::{Outcome, Pattern, Schedule, Sim, SimConfig, Workload};

fn main() {
    ccsql_bench::banner(
        "E-ABL3",
        "Protocol revision: direct ownership transfer vs via-memory",
    );
    let base = ccsql_bench::generate();
    let mut direct =
        GeneratedProtocol::generate_variant(OwnerTransfer::Direct, GenMode::Incremental).unwrap();

    // 1. The revision as a reviewed diff.
    let keys: Vec<Sym> = ["inmsg", "dirst", "dirpv", "bdirst", "bdirpv"]
        .iter()
        .map(|s| Sym::intern(s))
        .collect();
    let d = TableDiff::diff(base.table("D").unwrap(), direct.table("D").unwrap(), &keys).unwrap();
    println!("revision diff of D:\n{}", d.render(base.table("D").unwrap().schema()));

    // 2. Static re-checks.
    let res = invariants::check_all(&mut direct.db).unwrap();
    println!(
        "invariants on the revision: {} checked, {} violated",
        res.len(),
        invariants::failures(&res).len()
    );
    for (name, v) in [("V1", VcAssignment::v1()), ("V2", VcAssignment::v2())] {
        let t = protocol_dependency_table(&direct, &v, &AnalysisConfig::default()).unwrap();
        let g = Vcg::build(&t);
        println!(
            "deadlock analysis ({name}): {} rows, {}",
            t.rows.len(),
            if g.is_acyclic() {
                "acyclic".to_string()
            } else {
                format!("{} cyclic component(s)", g.cycles().len())
            }
        );
    }

    // 3. The transaction chart shrinks.
    let w_base = walker::walk(&base, "readex", "MESI", 1).unwrap();
    let w_dir = walker::walk(&direct, "readex", "MESI", 1).unwrap();
    println!("\nreadex@MESI, via memory ({} arcs):", w_base.arcs.len());
    print!("{}", w_base.render());
    println!("readex@MESI, direct transfer ({} arcs):", w_dir.arcs.len());
    print!("{}", w_dir.render());

    // 4. Dynamic effect on migratory sharing.
    println!("migratory-sharing comparison (2x2, 60 ops/node, seed 5):");
    for (label, gen) in [("via-memory", &base), ("direct", &direct)] {
        let cfg = SimConfig {
            quads: 2,
            nodes_per_quad: 2,
            vc_capacity: 2,
            dedicated_mem_path: true,
            schedule: Schedule::Random(5),
            max_steps: 2_000_000,
        };
        let nodes: Vec<NodeId> = (0..2)
            .flat_map(|q| (0..2).map(move |n| NodeId::new(q, n)))
            .collect();
        let wl = Workload::pattern(&nodes, Pattern::Migratory, 60, 5);
        let mut sim = Sim::new(gen, cfg, wl);
        let out = sim.run().unwrap();
        assert!(matches!(out, Outcome::Quiescent));
        sim.audit().unwrap();
        let lat = sim.latency_report();
        let (n, total) = lat
            .iter()
            .fold((0u64, 0u64), |(n, t), (_, a)| (n + a.count, t + a.total));
        println!(
            "  {label:<11} steps={:<5} msgs={:<5} retries={:<4} mean-latency={:.1}",
            sim.stats.steps,
            sim.stats.msgs,
            sim.stats.retries,
            total as f64 / n as f64
        );
    }
}
