//! E-SIM — dynamic validation: the statically-found Figure-4 cycle is a
//! real executable deadlock, and the fixed assignment never deadlocks.
//!
//! Beyond the scripted replay, we measure the deadlock *rate* over
//! random schedules: with the shared VC4 the race fires in a fraction
//! of schedules; with the dedicated path it never does.

use ccsql_protocol::topology::NodeId;
use ccsql_sim::{Fig4, Mix, Outcome, Schedule, Sim, SimConfig, Workload};

fn main() {
    ccsql_bench::banner("E-SIM", "Dynamic deadlock validation on the executing tables");
    let gen = ccsql_bench::generate();

    // Scripted Figure-4 replay.
    println!("scripted Figure-4 interleaving:");
    let out = Fig4::default().replay(&gen, false).unwrap();
    println!("  shared VC4 (V1): {}", summary(&out));
    assert!(out.is_deadlock());
    let out = Fig4::default().replay(&gen, true).unwrap();
    println!("  dedicated path (V2): {}", summary(&out));
    assert!(matches!(out, Outcome::Quiescent));

    // Deadlock rate over random schedules from the Figure-4 start state.
    println!("\nrandom schedules from the Figure-4 initial state (channel capacity 1):");
    for dedicated in [false, true] {
        let mut deadlocks = 0;
        let runs = 200;
        for seed in 0..runs {
            let fig = Fig4::default();
            let mut sim = {
                let cfg = SimConfig {
                    quads: 2,
                    nodes_per_quad: 2,
                    vc_capacity: 1,
                    dedicated_mem_path: dedicated,
                    schedule: Schedule::Random(seed),
                    max_steps: 100_000,
                };
                let mut per_node = vec![Vec::new(); 4];
                per_node[0] = vec![ccsql_sim::CpuOp::Evict(fig.b)];
                per_node[1] = vec![ccsql_sim::CpuOp::Write(fig.a)];
                let mut s = Sim::new(&gen, cfg, Workload::scripted(per_node));
                s.set_cache(fig.remote, fig.a, "M", 100);
                s.set_dir(fig.a, "MESI", &[fig.remote]);
                s.set_expected(fig.a, 100);
                s.set_cache(fig.l1, fig.b, "M", 200);
                s.set_dir(fig.b, "MESI", &[fig.l1]);
                s.set_expected(fig.b, 200);
                s
            };
            if sim.run().unwrap().is_deadlock() {
                deadlocks += 1;
            }
        }
        println!(
            "  {}: {deadlocks}/{runs} schedules deadlock",
            if dedicated {
                "dedicated path (V2)"
            } else {
                "shared VC4 (V1)   "
            }
        );
        if dedicated {
            assert_eq!(deadlocks, 0, "V2 must never deadlock");
        } else {
            assert!(deadlocks > 0, "V1 race must fire under some schedule");
        }
    }

    // Throughput numbers for a full random run on the fixed assignment.
    println!("\nrandom workload on the debugged tables (V2, 4 quads x 2 nodes):");
    let cfg = SimConfig {
        quads: 4,
        nodes_per_quad: 2,
        vc_capacity: 2,
        dedicated_mem_path: true,
        schedule: Schedule::Random(42),
        max_steps: 5_000_000,
    };
    let nodes: Vec<NodeId> = (0..4)
        .flat_map(|q| (0..2).map(move |n| NodeId::new(q, n)))
        .collect();
    let wl = Workload::random(&nodes, 250, 16, Mix::default(), 42);
    let mut sim = Sim::new(&gen, cfg, wl);
    let t0 = std::time::Instant::now();
    let out = sim.run().unwrap();
    sim.audit().unwrap();
    let s = sim.stats;
    println!(
        "  {} — {} steps, {} issued, {} completed, {} retries, {} msgs, {} reads checked in {:?}",
        summary(&out),
        s.steps,
        s.issued,
        s.completed,
        s.retries,
        s.msgs,
        s.read_checks,
        t0.elapsed()
    );

    print!("  spec-row coverage:");
    for (name, hit, total) in sim.coverage_report() {
        print!(" {name} {hit}/{total}");
    }
    println!();

    patterns_table(&gen);
}

fn patterns_table(gen: &ccsql::GeneratedProtocol) {
    use ccsql_sim::PATTERNS;
    println!("\nsharing-pattern comparison (2 quads x 2 nodes, 60 ops/node):");
    println!(
        "{:<18} {:>7} {:>9} {:>8} {:>9} {:>10}",
        "pattern", "steps", "completed", "retries", "hits", "mean-lat"
    );
    for &p in PATTERNS {
        let cfg = SimConfig {
            quads: 2,
            nodes_per_quad: 2,
            vc_capacity: 2,
            dedicated_mem_path: true,
            schedule: Schedule::Random(7),
            max_steps: 2_000_000,
        };
        let nodes: Vec<NodeId> = (0..2)
            .flat_map(|q| (0..2).map(move |n| NodeId::new(q, n)))
            .collect();
        let wl = Workload::pattern(&nodes, p, 60, 7);
        let mut sim = Sim::new(gen, cfg, wl);
        let out = sim.run().unwrap();
        assert!(matches!(out, Outcome::Quiescent), "{p:?}: {out:?}");
        sim.audit().unwrap();
        let lat = sim.latency_report();
        let (n, total): (u64, u64) = lat
            .iter()
            .fold((0, 0), |(n, t), (_, a)| (n + a.count, t + a.total));
        let s = sim.stats;
        println!(
            "{:<18} {:>7} {:>9} {:>8} {:>9} {:>10.1}",
            format!("{p:?}"),
            s.steps,
            s.completed,
            s.retries,
            s.hits,
            if n > 0 { total as f64 / n as f64 } else { 0.0 },
        );
    }
}

fn summary(o: &Outcome) -> String {
    match o {
        Outcome::Quiescent => "quiescent (coherent)".into(),
        Outcome::Deadlock(i) => format!("DEADLOCK on {}", i.channels.join("/")),
        Outcome::StepLimit => "step limit".into(),
    }
}
