//! E-INC — incremental vs monolithic table generation (section 3).
//!
//! The paper: "Incremental table generation produces the final table
//! within a few minutes on a SUN Sparc 10 whereas it takes around 6
//! hours to solve the conjunction of all the column constraints for D."
//!
//! We reproduce the *shape*: the monolithic cross-product walk grows
//! exponentially with the number of output columns while the
//! incremental column-at-a-time strategy stays linear, so their ratio
//! explodes. For the real D the monolithic product is so large we only
//! report its size.

use ccsql_bench::sweep_spec;
use ccsql_relalg::expr::SetContext;
use ccsql_relalg::GenMode;
use std::time::Instant;

fn main() {
    ccsql_bench::banner(
        "E-INC",
        "Incremental (minutes) vs monolithic (~6 hours) generation",
    );
    let ctx = SetContext::new();
    println!(
        "{:>4} {:>12} {:>12} {:>14} {:>14} {:>9}",
        "k", "mono-cands", "inc-cands", "monolithic", "incremental", "speedup"
    );
    for k in 0..=6 {
        let spec = sweep_spec(k);
        let t0 = Instant::now();
        let (mono, ms) = spec.generate(GenMode::Monolithic, &ctx).unwrap();
        let mono_t = t0.elapsed();
        let t0 = Instant::now();
        let (inc, is) = spec.generate(GenMode::Incremental, &ctx).unwrap();
        let inc_t = t0.elapsed();
        assert!(mono.set_eq(&inc), "modes disagree at k={k}");
        println!(
            "{:>4} {:>12} {:>12} {:>14?} {:>14?} {:>8.1}x",
            k,
            ms.candidates,
            is.candidates,
            mono_t,
            inc_t,
            mono_t.as_secs_f64() / inc_t.as_secs_f64().max(1e-9),
        );
    }

    // The real directory table.
    let gen = ccsql_bench::generate();
    let spec = &gen.spec.controller("D").unwrap().spec;
    let d_stats = &gen.stats["D"];
    let product: f64 = spec.columns.iter().map(|c| c.values.len() as f64).product();
    println!(
        "\nfull D: incremental = {:?} over {} candidates.",
        d_stats.elapsed, d_stats.candidates
    );
    println!(
        "full D monolithic cross product = {:.2e} candidate rows — at the sweep's ~10^7 \
         rows/second that is ~{:.1e} years (the paper's \"6 hours\" was Oracle 8 pruning a far \
         smaller conjunction; the shape — incremental wins by orders of magnitude and the gap \
         grows with column count — is the reproduced result).",
        product,
        product / 1e7 / (3600.0 * 24.0 * 365.0),
    );

    // Parallel incremental generation (crossbeam) for the full D.
    let ctx2 = ccsql::gen::GeneratedProtocol::context();
    let t0 = Instant::now();
    let (_, _) = spec
        .generate(GenMode::IncrementalParallel { threads: 8 }, &ctx2)
        .unwrap();
    println!("full D incremental, 8 threads: {:?}", t0.elapsed());
}
