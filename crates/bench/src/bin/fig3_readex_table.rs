//! FIG3 — regenerate the Figure-3 table (the read-exclusive transaction
//! slice of the directory controller) from its column constraints, and
//! show the same rows inside the full 30-column table `D`.

use ccsql::gen::GeneratedProtocol;
use ccsql_protocol::directory;
use ccsql_relalg::{ops, report, Expr, GenMode};

fn main() {
    ccsql_bench::banner("FIG3", "Table for the readex transaction");
    let ctx = GeneratedProtocol::context();

    // The compact 8-column form the paper prints.
    let (fig3, stats) = directory::fig3_spec()
        .generate(GenMode::Incremental, &ctx)
        .expect("fig3 generation");
    println!(
        "generated from column constraints: {} rows, {} columns, {} candidates, {:?}\n",
        fig3.len(),
        fig3.arity(),
        stats.candidates,
        stats.elapsed
    );
    print!("{}", report::ascii_table(&fig3.sorted()));

    // The same transaction inside the full table D.
    let gen = ccsql_bench::generate();
    let d = gen.table("D").expect("D");
    let slice = ops::select(
        d,
        &Expr::col_in("inmsg", &["readex"]).or(Expr::col_in(
            "bdirst",
            &["Busy-sd", "Busy-s", "Busy-d", "Busy-m"],
        )),
        &GeneratedProtocol::context(),
    )
    .expect("slice");
    let cols = ops::project_str(
        &slice,
        &[
            "inmsg", "dirst", "dirpv", "bdirst", "bdirpv", "locmsg", "remmsg", "memmsg",
            "nxtbdirst", "nxtbdirpv", "cmpl",
        ],
    )
    .expect("projection");
    println!(
        "\nthe same transaction in the full 30-column D ({} rows; retry rows for all request \
         types included):",
        cols.len()
    );
    let non_retry = ops::select(
        &cols,
        &ccsql_relalg::parse_expr("not locmsg = retry").unwrap(),
        &ctx,
    )
    .unwrap();
    print!("{}", report::ascii_table(&non_retry.sorted()));
}
