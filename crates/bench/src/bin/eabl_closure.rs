//! E-ABL1 — ablation of footnote 2: single pairwise composition vs
//! repeated composition to a fixpoint (transitive closure).
//!
//! "Our first attempt at computing protocol dependency table was to do
//! a transitive closure but we abandoned this due to the excessive
//! number of spurious cycles. … in practice this was not needed as no
//! dependencies were found by composition [beyond the first pass]."

use ccsql::depend::{protocol_dependency_table, AnalysisConfig};
use ccsql::vc::VcAssignment;
use ccsql::vcg::Vcg;
use std::time::Instant;

fn main() {
    ccsql_bench::banner("E-ABL1", "Pairwise composition vs transitive closure");
    let gen = ccsql_bench::generate();
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>14} {:>14}",
        "V", "rows-pair", "rows-clos", "edges±", "cycles-pair", "cycles-clos"
    );
    for v in [VcAssignment::v0(), VcAssignment::v1(), VcAssignment::v2()] {
        let t0 = Instant::now();
        let pair = protocol_dependency_table(&gen, &v, &AnalysisConfig::default()).unwrap();
        let t_pair = t0.elapsed();
        let t0 = Instant::now();
        let clos = protocol_dependency_table(
            &gen,
            &v,
            &AnalysisConfig {
                transitive_closure: true,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        let t_clos = t0.elapsed();
        let g_pair = Vcg::build(&pair);
        let g_clos = Vcg::build(&clos);
        let c_pair = g_pair.simple_cycles(100_000).len();
        let c_clos = g_clos.simple_cycles(100_000).len();
        println!(
            "{:>4} {:>10} {:>10} {:>8} {:>14} {:>14}   ({t_pair:?} vs {t_clos:?})",
            v.name,
            pair.rows.len(),
            clos.rows.len(),
            g_clos.edges().len() as i64 - g_pair.edges().len() as i64,
            c_pair,
            c_clos,
        );
        // Soundness equivalence: cyclic iff cyclic.
        assert_eq!(g_pair.is_acyclic(), g_clos.is_acyclic(), "{}", v.name);
    }
    println!(
        "\nshape reproduced: the closure multiplies dependency rows (and, on cyclic \
         assignments, the simple cycles an engineer must triage) without changing the verdict."
    );
}
