//! FIG2 — replay the Figure-2 read-exclusive transaction and print the
//! numbered message arcs (local → D → {remote, memory} → D → local).

use ccsql_protocol::topology::NodeId;
use ccsql_sim::{CpuOp, Outcome, Sim, SimConfig, Workload};

fn main() {
    ccsql_bench::banner("FIG2", "Read Exclusive Transaction at D");
    let gen = ccsql_bench::generate();

    // Local node in quad 0; home directory/memory and the sharing
    // remote node in quad 1; the line is shared (SI) at the remote.
    let cfg = SimConfig {
        quads: 2,
        nodes_per_quad: 2,
        vc_capacity: 2,
        dedicated_mem_path: true,
        max_steps: 10_000,
        ..SimConfig::default()
    };
    let local = NodeId::new(0, 0);
    let remote = NodeId::new(1, 1);
    let addr = 1; // home quad 1
    let mut per_node = vec![Vec::new(); 4];
    per_node[0] = vec![CpuOp::Write(addr)];
    let mut sim = Sim::new(&gen, cfg, Workload::scripted(per_node));
    sim.set_cache(remote, addr, "S", 7);
    sim.set_dir(addr, "SI", &[remote]);
    sim.set_mem(addr, 7);
    sim.set_expected(addr, 7);
    sim.enable_trace();

    let out = sim.run().expect("simulation");
    assert!(matches!(out, Outcome::Quiescent), "{out:?}");
    sim.audit().expect("coherent");

    println!("message/transition sequence (trace of the generated tables):");
    for (i, line) in sim.trace().iter().enumerate() {
        println!("  {:>2}. {line}", i + 1);
    }
    let (dirst, sharers) = sim.dir_state(addr);
    let (cache, _) = sim.cache_state(local, addr);
    println!(
        "\nfinal state: directory {dirst} with {sharers} owner (paper: \"directory state is \
         updated with the value MESI\"), local cache {cache}, remote invalidated."
    );
    assert_eq!(dirst, "MESI");
    assert_eq!(cache, "M");
    assert_eq!(sim.cache_state(remote, addr).0, "I");
}
