//! FIG5 — map the debugged directory table onto the hardware
//! implementation (section 5): extended table ED, nine implementation
//! tables, reconstruction check, code generation.

use ccsql::codegen;
use ccsql::hwmap::{HwMapping, IMPL_INPUTS};
use std::time::Instant;

fn main() {
    ccsql_bench::banner("FIG5", "A hardware implementation of D");
    let gen = ccsql_bench::generate();
    let d = gen.table("D").unwrap();

    let t0 = Instant::now();
    let mapping = HwMapping::build(&gen).expect("mapping");
    let build_t = t0.elapsed();
    let t0 = Instant::now();
    let check = mapping.check(d).expect("check");
    let check_t = t0.elapsed();

    println!(
        "D ({} rows x {} cols) → ED ({} rows x {} cols; inputs +Qstatus +Dqstatus, output \
         +Fdback, request +Dfdback)\n",
        d.len(),
        d.arity(),
        mapping.ed.len(),
        mapping.ed.arity()
    );
    println!("nine implementation tables (one per output of the split request/response controllers):");
    let mut total_loc = 0usize;
    for (name, rel) in &mapping.impl_tables {
        let n_inputs = IMPL_INPUTS.len() + 11;
        let verilog = codegen::verilog_case(name, rel, n_inputs);
        total_loc += verilog.lines().count();
        println!(
            "  {name:<18} {:>4} rows x {:>2} cols → {:>5} lines of Verilog",
            rel.len(),
            rel.arity(),
            verilog.lines().count()
        );
    }
    println!(
        "\nmapping built in {build_t:?}; checks in {check_t:?}: ED reconstructible = {}, \
         debugged D preserved = {} — \"it was explicitly checked that D could be reconstructed \
         from these nine implementation tables\".",
        check.ed_reconstructed, check.d_preserved
    );
    println!("total generated Verilog: {total_loc} lines (SQL report generation).");
    assert!(check.ok());
}
