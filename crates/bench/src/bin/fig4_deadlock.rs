//! FIG4 — the deadlock discovery story (section 4.1–4.2).
//!
//! * `V0` (4 channels): several cycles, mostly between the directory
//!   and memory controllers at the home node.
//! * `V1` (VC4 added): the Figure-4 deadlock — a cycle on VC2/VC4
//!   inferred by composing the memory-controller row R1 with the
//!   placement-modified directory row R2′, ignoring messages.
//! * `V2` (dedicated directory→memory path): no cycles.

use ccsql::depend::{protocol_dependency_table, AnalysisConfig};
use ccsql::report::deadlock_report;
use ccsql::vc::VcAssignment;

fn main() {
    ccsql_bench::banner("FIG4", "Deadlock detection across channel assignments");
    let gen = ccsql_bench::generate();
    let cfg = AnalysisConfig::default();
    for v in [VcAssignment::v0(), VcAssignment::v1(), VcAssignment::v2()] {
        let t0 = std::time::Instant::now();
        let deps = protocol_dependency_table(&gen, &v, &cfg).expect("analysis");
        let rep = deadlock_report(&gen, v.name, &deps);
        println!("{}", rep.render());
        println!("(analysis time: {:?})\n", t0.elapsed());
    }
    println!(
        "Paper narrative reproduced: V0 = several cycles involving the home directory and \
         memory controllers; V1 = the VC2/VC4 cycle of Figure 4 (resolved in hardware by a \
         dedicated mread path); V2 = absence of deadlocks established."
    );
}
