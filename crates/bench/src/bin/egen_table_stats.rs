//! E-GEN — regenerate all eight controller tables and report the
//! headline numbers of sections 3 and 6: D with 30 columns, ~500 rows
//! and ~40 busy states; 8 controller tables in the central database.

use std::collections::HashSet;

fn main() {
    ccsql_bench::banner(
        "E-GEN",
        "Push-button generation of the 8 controller tables",
    );
    let gen = ccsql_bench::generate();
    println!(
        "{:<5} {:>5} {:>5} {:>12} {:>14}  per-column intermediate sizes",
        "table", "rows", "cols", "candidates", "elapsed"
    );
    for name in ["D", "M", "N", "R", "C", "IO", "L", "CFG"] {
        let t = gen.table(name).unwrap();
        let s = &gen.stats[name];
        let steps: Vec<String> = s
            .per_column
            .iter()
            .map(|(c, n)| format!("{c}:{n}"))
            .collect();
        println!(
            "{:<5} {:>5} {:>5} {:>12} {:>14?}  {}",
            name,
            t.len(),
            t.arity(),
            s.candidates,
            s.elapsed,
            steps.join(" → ")
        );
    }

    let d = gen.table("D").unwrap();
    let busy: HashSet<String> = d
        .column_values("bdirst")
        .unwrap()
        .into_iter()
        .map(|v| v.to_string())
        .filter(|s| s != "I")
        .collect();
    println!(
        "\nD: {} columns, {} rows, {} busy states — paper: \"30 columns and 500 rows … around \
         40 Busy states\".",
        d.arity(),
        d.len(),
        busy.len()
    );
    println!(
        "total controller tables: {} — paper: \"a total of 8 controller database tables\".",
        gen.spec.controllers.len()
    );
}
