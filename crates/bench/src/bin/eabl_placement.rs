//! E-ABL2 — ablation of the matching relaxations: quad placements and
//! message-ignoring. The Figure-4 deadlock needs `L≠H=R` ("if remote
//! and home nodes share the same quad, then they both share the same
//! virtual channel v2 and hence a dependency must be inferred") and the
//! message-ignoring relaxation for interleavings.

use ccsql::depend::{protocol_dependency_table, AnalysisConfig};
use ccsql::vc::VcAssignment;
use ccsql::vcg::Vcg;
use ccsql_protocol::topology::{QuadPlacement, PLACEMENTS};

fn run(gen: &ccsql::GeneratedProtocol, v: &VcAssignment, cfg: &AnalysisConfig) -> (usize, usize) {
    let t = protocol_dependency_table(gen, v, cfg).unwrap();
    let g = Vcg::build(&t);
    (t.rows.len(), g.simple_cycles(100_000).len())
}

fn main() {
    ccsql_bench::banner(
        "E-ABL2",
        "Quad-placement and message-ignoring relaxations",
    );
    let gen = ccsql_bench::generate();

    for v in [VcAssignment::v0(), VcAssignment::v1()] {
        println!("--- assignment {} ---", v.name);
        println!("{:<44} {:>8} {:>8}", "configuration", "rows", "cycles");
        let exact = AnalysisConfig::exact_only();
        let (r, c) = run(&gen, &v, &exact);
        println!("{:<44} {:>8} {:>8}", "exact match only (L!=H!=R, messages kept)", r, c);

        let no_msg_relax = AnalysisConfig {
            ignore_messages: false,
            ..AnalysisConfig::default()
        };
        let (r, c) = run(&gen, &v, &no_msg_relax);
        println!("{:<44} {:>8} {:>8}", "all placements, messages kept", r, c);

        for &p in PLACEMENTS {
            let cfg = AnalysisConfig {
                placements: vec![QuadPlacement::AllDistinct, p],
                ..AnalysisConfig::default()
            };
            let (r, c) = run(&gen, &v, &cfg);
            println!(
                "{:<44} {:>8} {:>8}",
                format!("exact + placement {}", p.notation()),
                r,
                c
            );
        }
        let (r, c) = run(&gen, &v, &AnalysisConfig::default());
        println!("{:<44} {:>8} {:>8}\n", "full analysis (paper)", r, c);
    }
    println!(
        "shape reproduced: each relaxation adds dependencies; the home-quad sharing placements \
         are what surface the directory/memory cycles."
    );
}
