//! Mapping the debugged table `D` onto hardware (section 5).
//!
//! The implementation splits `D` into a *request controller* and a
//! *response controller* working in parallel over finite queues
//! (`locmsg`, `remmsg`, `memmsg`, `lookup`, `upd`, `request`,
//! `response`), plus a feedback path from the response controller back
//! to the request controller:
//!
//! 1. [`extend_table`] builds the **extended table `ED`** from `D` by
//!    adding the implementation inputs `Qstatus` (any output queue or
//!    the busy directory full?) and `Dqstatus` (directory-update queue
//!    full?), the output `Fdback`, and the implementation-defined
//!    request `Dfdback`:
//!    * a request with `Qstatus = Full` is answered `retry` and has no
//!      other effect;
//!    * a response needing a directory update with `Dqstatus = Full`
//!      defers the update by emitting the feedback request `Dfdback`;
//!    * `Dfdback` rows re-attempt the deferred update.
//! 2. [`partition`] splits `ED` into **nine implementation tables** with
//!    `CREATE TABLE … AS SELECT DISTINCT` — one per output group of the
//!    request and response controllers.
//! 3. [`reconstruct`] joins the nine tables back together and
//!    [`HwMapping::check`] verifies that `ED` is reproduced exactly and
//!    that the original debugged `D` is contained in the mapping —
//!    "to ensure that no errors are introduced in mapping D".

use crate::gen::{define_protocol_sets, GeneratedProtocol};
use ccsql_protocol::messages;
use ccsql_relalg::ops;
use ccsql_relalg::{Database, Relation, Schema, Value};

/// Names of the implementation input columns added to `D`.
pub const IMPL_INPUTS: &[&str] = &["Qstatus", "Dqstatus"];

/// The nine implementation tables: (name, request side?, output columns).
pub const IMPL_TABLES: &[(&str, bool, &[&str])] = &[
    (
        "Request_locmsg",
        true,
        &["locmsg", "locmsgsrc", "locmsgdest", "locmsgres", "cmpl"],
    ),
    (
        "Request_remmsg",
        true,
        &["remmsg", "remmsgsrc", "remmsgdest", "remmsgres"],
    ),
    (
        "Request_memmsg",
        true,
        &["memmsg", "memmsgsrc", "memmsgdest", "memmsgres"],
    ),
    (
        "Request_dir",
        true,
        &["dirupd", "nxtdirst", "nxtdirpv", "Fdback"],
    ),
    ("Request_bdir", true, &["bdirupd", "nxtbdirst", "nxtbdirpv"]),
    (
        "Response_locmsg",
        false,
        &["locmsg", "locmsgsrc", "locmsgdest", "locmsgres", "cmpl"],
    ),
    (
        "Response_memmsg",
        false,
        &["memmsg", "memmsgsrc", "memmsgdest", "memmsgres"],
    ),
    (
        "Response_dir",
        false,
        &["dirupd", "nxtdirst", "nxtdirpv", "Fdback"],
    ),
    (
        "Response_bdir",
        false,
        &["bdirupd", "nxtbdirst", "nxtbdirpv"],
    ),
];

/// The complete hardware mapping artifact.
pub struct HwMapping {
    /// The extended table `ED`.
    pub ed: Relation,
    /// The nine implementation tables, in [`IMPL_TABLES`] order.
    pub impl_tables: Vec<(String, Relation)>,
    /// The database holding `D`, `ED` and the implementation tables.
    pub db: Database,
}

/// Output columns of `D` (everything that must be neutralised when a
/// request is bounced with retry).
const OUTPUT_COLS: &[&str] = &[
    "locmsg",
    "locmsgsrc",
    "locmsgdest",
    "locmsgres",
    "remmsg",
    "remmsgsrc",
    "remmsgdest",
    "remmsgres",
    "memmsg",
    "memmsgsrc",
    "memmsgdest",
    "memmsgres",
    "nxtdirst",
    "nxtdirpv",
    "nxtbdirst",
    "nxtbdirpv",
    "dirupd",
    "bdirupd",
    "cmpl",
];

const DIR_UPD_COLS: &[&str] = &["dirupd", "nxtdirst", "nxtdirpv"];

/// Build the extended table `ED` from the debugged `D`.
pub fn extend_table(d: &Relation) -> ccsql_relalg::Result<Relation> {
    let mut cols: Vec<String> = IMPL_INPUTS.iter().map(|s| s.to_string()).collect();
    cols.extend(d.schema().columns().iter().map(|c| c.to_string()));
    cols.push("Fdback".to_string());
    let mut ed = Relation::new(Schema::new(cols)?);

    let ds = d.schema();
    let idx = |name: &str| ds.index_of_str(name).expect("D column");
    let inmsg = idx("inmsg");
    let locmsg = idx("locmsg");
    let locsrc = idx("locmsgsrc");
    let locdest = idx("locmsgdest");
    let locres = idx("locmsgres");
    let cmpl = idx("cmpl");
    let dirupd = idx("dirupd");

    let full = Value::sym("Full");
    let notfull = Value::sym("NotFull");
    let retry = Value::sym("retry");

    let out_row = |q: Value, dq: Value, body: &[Value], fdback: Value, ed: &mut Relation| {
        let mut row = Vec::with_capacity(body.len() + 3);
        row.push(q);
        row.push(dq);
        row.extend_from_slice(body);
        row.push(fdback);
        ed.push_row_unchecked(&row);
    };

    let mut deferred: Vec<Vec<Value>> = Vec::new();
    for r in d.rows() {
        let m = r[inmsg].to_string();
        if messages::is_request(&m) {
            // Qstatus = NotFull: behave exactly as the debugged D.
            out_row(notfull, Value::Null, r, Value::Null, &mut ed);
            // Qstatus = Full: de-queue and answer retry, nothing else.
            let mut bounced = r.to_vec();
            for &c in OUTPUT_COLS {
                bounced[idx(c)] = Value::Null;
            }
            bounced[locmsg] = retry;
            bounced[locsrc] = Value::sym("home");
            bounced[locdest] = Value::sym("local");
            bounced[locres] = Value::sym("rspq");
            bounced[cmpl] = Value::sym("no");
            out_row(full, Value::Null, &bounced, Value::Null, &mut ed);
        } else if r[dirupd].is_null() {
            // Response with no directory update: Dqstatus irrelevant.
            out_row(Value::Null, Value::Null, r, Value::Null, &mut ed);
        } else {
            // Dqstatus = NotFull: original behaviour.
            out_row(Value::Null, notfull, r, Value::Null, &mut ed);
            // Dqstatus = Full: defer the directory update via Dfdback.
            let mut def = r.to_vec();
            for &c in DIR_UPD_COLS {
                def[idx(c)] = Value::Null;
            }
            out_row(Value::Null, full, &def, Value::sym("Dfdback"), &mut ed);
            // Remember the deferred update to synthesise Dfdback rows.
            let mut fd = r.to_vec();
            // The feedback request re-enters the request controller with
            // only the state inputs and the deferred update outputs.
            fd[inmsg] = Value::sym("Dfdback");
            fd[idx("inmsgsrc")] = Value::sym("home");
            fd[idx("inmsgdest")] = Value::sym("home");
            fd[idx("inmsgres")] = Value::sym("reqq");
            for &c in OUTPUT_COLS {
                if !DIR_UPD_COLS.contains(&c) {
                    fd[idx(c)] = Value::Null;
                }
            }
            fd[cmpl] = Value::sym("no");
            deferred.push(fd);
        }
    }
    // Dfdback rows: the deferred update applies when the update queue
    // has drained; if it is still full the feedback request circulates.
    for fd in deferred {
        out_row(notfull, Value::Null, &fd, Value::Null, &mut ed);
        let mut spin = fd.clone();
        for &c in DIR_UPD_COLS {
            spin[idx(c)] = Value::Null;
        }
        out_row(full, Value::Null, &spin, Value::sym("Dfdback"), &mut ed);
    }
    Ok(ed.distinct())
}

/// Partition `ED` into the nine implementation tables using
/// `CREATE TABLE … AS SELECT DISTINCT` (the paper's exact mechanism).
pub fn partition(db: &mut Database) -> ccsql_relalg::Result<Vec<(String, Relation)>> {
    let input_cols = {
        let ed = db.table("ED")?;
        let n_inputs = IMPL_INPUTS.len() + 11; // impl inputs + D's 11 inputs
        ed.schema().columns()[..n_inputs]
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
    };
    let mut out = Vec::with_capacity(IMPL_TABLES.len());
    for (name, is_request, outputs) in IMPL_TABLES {
        let pred = if *is_request {
            "isrequest(inmsg)"
        } else {
            "isresponse(inmsg)"
        };
        let cols = input_cols
            .iter()
            .map(|s| s.as_str())
            .chain(outputs.iter().copied())
            .collect::<Vec<_>>()
            .join(", ");
        let sql = format!("create table {name} as select distinct {cols} from ED where {pred}");
        let rel = db.query(&sql)?;
        out.push((name.to_string(), rel));
    }
    Ok(out)
}

/// Reconstruct `ED` from the nine implementation tables by joining each
/// side on the input columns and unioning the two sides.
pub fn reconstruct(db: &Database) -> ccsql_relalg::Result<Relation> {
    let ed = db.table("ED")?;
    let input_cols: Vec<String> = {
        let n_inputs = IMPL_INPUTS.len() + 11;
        ed.schema().columns()[..n_inputs]
            .iter()
            .map(|c| c.to_string())
            .collect()
    };
    let ed_cols: Vec<&str> = ed.schema().columns().iter().map(|c| c.as_str()).collect();

    let side = |is_request: bool| -> ccsql_relalg::Result<Relation> {
        let mut joined: Option<Relation> = None;
        for (name, req, _) in IMPL_TABLES {
            if *req != is_request {
                continue;
            }
            let t = db.table(name)?;
            joined = Some(match joined {
                None => t.clone(),
                Some(acc) => {
                    let on: Vec<(&str, &str)> = input_cols
                        .iter()
                        .map(|c| (c.as_str(), c.as_str()))
                        .collect();
                    let j = ops::equi_join(&acc, t, &on, "r")?;
                    // Drop the duplicated right-side key columns.
                    let keep: Vec<&str> = j
                        .schema()
                        .columns()
                        .iter()
                        .map(|c| c.as_str())
                        .filter(|c| !c.starts_with("r."))
                        .collect();
                    ops::project_str(&j, &keep)?
                }
            });
        }
        let mut rel = joined.expect("at least one table per side");
        // The request side lacks the Fdback column (always NULL for
        // requests except the synthesised spin rows — those carry
        // Fdback on the response side only in our grouping); the
        // response side lacks the remmsg group (responses never snoop).
        // Add the missing columns as NULL so both sides have ED's shape.
        for col in &ed_cols {
            if rel.schema().index_of_str(col).is_none() {
                let mut cols: Vec<String> = rel
                    .schema()
                    .columns()
                    .iter()
                    .map(|c| c.to_string())
                    .collect();
                cols.push(col.to_string());
                let mut wider = Relation::new(Schema::new(cols)?);
                for r in rel.rows() {
                    let mut row = r.to_vec();
                    row.push(Value::Null);
                    wider.push_row_unchecked(&row);
                }
                rel = wider;
            }
        }
        ops::project_str(&rel, &ed_cols)
    };

    let req = side(true)?;
    let rsp = side(false)?;
    Ok(ops::union(&req, &rsp)?.distinct())
}

impl HwMapping {
    /// Run the full mapping flow on a generated protocol.
    pub fn build(gen: &GeneratedProtocol) -> ccsql_relalg::Result<HwMapping> {
        let d = gen.table("D")?.clone();
        let ed = extend_table(&d)?;
        let mut db = Database::new();
        define_protocol_sets(&mut db);
        db.put_table("D", d);
        db.put_table("ED", ed.clone());
        let impl_tables = partition(&mut db)?;
        Ok(HwMapping {
            ed,
            impl_tables,
            db,
        })
    }

    /// The reconstruction check: `ED` must be exactly reproducible from
    /// the nine implementation tables, and the original debugged `D`
    /// must be contained in the mapping (its behaviour at
    /// `Qstatus = NotFull` / `Dqstatus = NotFull`).
    pub fn check(&self, original_d: &Relation) -> ccsql_relalg::Result<HwCheck> {
        let rebuilt = reconstruct(&self.db)?;
        let ed_ok = rebuilt.set_eq(&self.ed);

        // Project the unconstrained-resource slice of ED back to D shape.
        let d_cols: Vec<&str> = original_d
            .schema()
            .columns()
            .iter()
            .map(|c| c.as_str())
            .collect();
        let mut sliced = Relation::new(original_d.schema().clone());
        let es = self.ed.schema();
        let q = es.index_of_str("Qstatus").unwrap();
        let dq = es.index_of_str("Dqstatus").unwrap();
        let inmsg = es.index_of_str("inmsg").unwrap();
        let proj: Vec<usize> = d_cols.iter().map(|c| es.index_of_str(c).unwrap()).collect();
        for r in self.ed.rows() {
            if r[inmsg] == Value::sym("Dfdback") {
                continue;
            }
            let unconstrained = (r[q] == Value::sym("NotFull")
                || (r[q].is_null() && r[dq] != Value::sym("Full")))
                && r[dq] != Value::sym("Full");
            if unconstrained {
                let row: Vec<Value> = proj.iter().map(|&i| r[i]).collect();
                sliced.push_row_unchecked(&row);
            }
        }
        let d_ok = original_d.subset_of(&sliced) && sliced.subset_of(original_d);
        Ok(HwCheck {
            ed_reconstructed: ed_ok,
            d_preserved: d_ok,
        })
    }
}

/// Result of the mapping-preservation checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HwCheck {
    /// `ED` is exactly reproducible from the implementation tables.
    pub ed_reconstructed: bool,
    /// The original debugged `D` is contained in the mapping.
    pub d_preserved: bool,
}

impl HwCheck {
    /// Both checks passed.
    pub fn ok(self) -> bool {
        self.ed_reconstructed && self.d_preserved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn generated() -> &'static GeneratedProtocol {
        static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
        GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
    }

    #[test]
    fn ed_extends_d() {
        let g = generated();
        let d = g.table("D").unwrap();
        let ed = extend_table(d).unwrap();
        // 33 columns: Qstatus, Dqstatus + 30 + Fdback.
        assert_eq!(ed.arity(), 33);
        // Every request row doubles (Full/NotFull); responses with
        // updates triple (NotFull, Full, + Dfdback pair later).
        assert!(ed.len() > d.len());
        // Dfdback appears as an implementation-defined request.
        let inmsg = ed.schema().index_of_str("inmsg").unwrap();
        assert!(ed.rows().any(|r| r[inmsg] == Value::sym("Dfdback")));
    }

    #[test]
    fn full_queue_requests_retry() {
        let g = generated();
        let ed = extend_table(g.table("D").unwrap()).unwrap();
        let s = ed.schema();
        let q = s.index_of_str("Qstatus").unwrap();
        let inmsg = s.index_of_str("inmsg").unwrap();
        let locmsg = s.index_of_str("locmsg").unwrap();
        let remmsg = s.index_of_str("remmsg").unwrap();
        for r in ed.rows() {
            if r[q] == Value::sym("Full") && r[inmsg] != Value::sym("Dfdback") {
                assert_eq!(r[locmsg], Value::sym("retry"));
                assert_eq!(r[remmsg], Value::Null);
            }
        }
    }

    #[test]
    fn nine_implementation_tables() {
        let g = generated();
        let m = HwMapping::build(g).unwrap();
        assert_eq!(m.impl_tables.len(), 9);
        for (name, rel) in &m.impl_tables {
            assert!(!rel.is_empty(), "{name} empty");
        }
    }

    #[test]
    fn reconstruction_and_preservation_hold() {
        let g = generated();
        let m = HwMapping::build(g).unwrap();
        let check = m.check(g.table("D").unwrap()).unwrap();
        assert!(check.ed_reconstructed, "ED not reconstructible");
        assert!(check.d_preserved, "debugged D not preserved");
        assert!(check.ok());
    }

    #[test]
    fn corrupted_mapping_fails_check() {
        let g = generated();
        let mut m = HwMapping::build(g).unwrap();
        // Corrupt one implementation table: drop a row.
        let (name, rel) = m.impl_tables[0].clone();
        let mut smaller = Relation::new(rel.schema().clone());
        for r in rel.rows().skip(1) {
            smaller.push_row(r).unwrap();
        }
        m.db.put_table(&name, smaller.clone());
        m.impl_tables[0] = (name, smaller);
        let check = m.check(g.table("D").unwrap()).unwrap();
        assert!(!check.ed_reconstructed);
    }
}
