//! # `ccsql` — table-driven design and early error detection for cache
//! coherence protocols
//!
//! This crate is the primary contribution of *Subramaniam, "Early Error
//! Detection in Industrial Strength Cache Coherence Protocols Using
//! SQL", IPPS 2003*, rebuilt as a Rust library on top of the
//! [`ccsql_relalg`] relational engine and the [`ccsql_protocol`]
//! ASURA-style protocol specification:
//!
//! * [`gen`] — push-button generation of all 8 controller tables from
//!   SQL column constraints (section 3);
//! * [`vc`] / [`depend`] / [`vcg`] — static deadlock detection: virtual
//!   channel assignments, controller dependency tables, pairwise
//!   composition under the five quad-placement relations and the
//!   message-ignoring relaxation, and cycle analysis of the virtual
//!   channel dependency graph (section 4.1, Figure 4);
//! * [`invariants`] — the ~50-invariant suite checked as SQL emptiness
//!   queries (section 4.3);
//! * [`hwmap`] / [`codegen`] — mapping the debugged directory table onto
//!   the split request/response hardware implementation, with the
//!   reconstruction check and report-generation emitters (section 5);
//! * [`report`] — Figure-4-style deadlock narratives.
//!
//! ## Quickstart
//!
//! ```no_run
//! use ccsql::gen::GeneratedProtocol;
//! use ccsql::depend::{protocol_dependency_table, AnalysisConfig};
//! use ccsql::vc::VcAssignment;
//! use ccsql::vcg::Vcg;
//!
//! let gen = GeneratedProtocol::generate_default().unwrap();
//! let deps = protocol_dependency_table(
//!     &gen, &VcAssignment::v1(), &AnalysisConfig::default()).unwrap();
//! let vcg = Vcg::build(&deps);
//! for cycle in vcg.cycles() {
//!     println!("potential deadlock: {:?}", cycle.channels);
//! }
//! ```

pub mod codegen;
pub mod depend;
pub mod diff;
pub mod export;
pub mod gen;
pub mod hwmap;
pub mod invariants;
pub mod liveness;
pub mod report;
pub mod vc;
pub mod vcg;
pub mod walker;

pub use depend::{protocol_dependency_table, AnalysisConfig, DependencyTable};
pub use gen::GeneratedProtocol;
pub use hwmap::HwMapping;
pub use report::{deadlock_report, DeadlockReport};
pub use vc::VcAssignment;
pub use vcg::Vcg;
