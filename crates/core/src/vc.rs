//! Virtual channel assignments — the table `V(m, s, d, v)` of section
//! 4.1: which virtual channel carries message `m` from source role `s`
//! to destination role `d`.
//!
//! Three assignments reproduce the paper's history:
//!
//! * [`VcAssignment::v0`] — the initial 4-channel assignment (VC0–VC3);
//!   directory↔memory traffic shares the request/response channels,
//!   which yields "several cycles … most of these deadlocks involved the
//!   directory controller and the memory controller at the home node".
//! * [`VcAssignment::v1`] — VC4 added for directory→memory requests.
//!   The analysis then finds the Figure-4 deadlock (cycle VC2 ↔ VC4).
//! * [`VcAssignment::v2`] — the paper's fix: "a dedicated hardware path
//!   from directory controller to the home memory controller for mread
//!   requests". A dedicated path is not a finite shared resource, so
//!   messages routed over it contribute no channel dependencies. (Our
//!   protocol's directory also issues `mwrite` while processing
//!   responses, so the dedicated path carries the directory's memory
//!   operations `mread`/`mwrite` — see DESIGN.md.)

use ccsql_protocol::messages;
use ccsql_protocol::topology::Role;
use ccsql_relalg::{Relation, Value};
use std::collections::HashMap;
use std::collections::HashSet;

/// The channel names.
pub const CHANNELS: &[&str] = &["VC0", "VC1", "VC2", "VC3", "VC4", "PATH"];

/// One assignment entry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VcEntry {
    /// Message name.
    pub msg: &'static str,
    /// Source role.
    pub src: Role,
    /// Destination role.
    pub dest: Role,
    /// Virtual channel name.
    pub vc: &'static str,
}

/// A virtual channel assignment: the table `V` plus the set of channels
/// that are *dedicated* hardware paths (excluded from dependency
/// analysis because they are never shared).
#[derive(Clone, Debug, Default)]
pub struct VcAssignment {
    /// Human name of the assignment (`V0`, `V1`, `V2`).
    pub name: &'static str,
    entries: HashMap<(&'static str, Role, Role), &'static str>,
    dedicated: HashSet<&'static str>,
}

impl VcAssignment {
    /// Channel assigned to `(msg, src, dest)`, if any.
    pub fn lookup(&self, msg: &str, src: Role, dest: Role) -> Option<&'static str> {
        // `msg` arrives as a runtime string from table cells; entries are
        // keyed by the catalogue's 'static names.
        let m = messages::message(msg)?.name;
        self.entries.get(&(m, src, dest)).copied()
    }

    /// Is `vc` a dedicated (dependency-free) path?
    pub fn is_dedicated(&self, vc: &str) -> bool {
        self.dedicated.contains(vc)
    }

    /// All entries, sorted for deterministic reports.
    pub fn entries(&self) -> Vec<VcEntry> {
        let mut out: Vec<VcEntry> = self
            .entries
            .iter()
            .map(|(&(msg, src, dest), &vc)| VcEntry { msg, src, dest, vc })
            .collect();
        out.sort_by_key(|e| (e.vc, e.msg, e.src, e.dest));
        out
    }

    /// Render `V` as a relation (columns `m, s, d, v`), the database
    /// table form the paper stores it in.
    pub fn as_relation(&self) -> Relation {
        let mut rel = Relation::with_columns(["m", "s", "d", "v"]).expect("static schema");
        for e in self.entries() {
            rel.push_row(&[
                Value::sym(e.msg),
                Value::sym(e.src.as_str()),
                Value::sym(e.dest.as_str()),
                Value::sym(e.vc),
            ])
            .expect("arity");
        }
        rel
    }

    /// Number of distinct (non-dedicated) virtual channels in use.
    pub fn channel_count(&self) -> usize {
        let used: HashSet<&str> = self
            .entries
            .values()
            .filter(|v| !self.dedicated.contains(*v))
            .copied()
            .collect();
        used.len()
    }

    fn insert(&mut self, msg: &'static str, src: Role, dest: Role, vc: &'static str) {
        self.entries.insert((msg, src, dest), vc);
    }

    /// Build an assignment by classifying every catalogued message over
    /// the role pairs it travels. `home_home_request` selects the channel
    /// for directory→memory requests; `dedicated_mem_ops` routes
    /// `mread`/`mwrite` over the dedicated `PATH`.
    fn classified(
        name: &'static str,
        home_home_request: &'static str,
        dedicated_mem_ops: bool,
    ) -> VcAssignment {
        let mut v = VcAssignment {
            name,
            ..VcAssignment::default()
        };
        for m in messages::MESSAGES {
            let req = m.kind == messages::MsgKind::Request;
            // Role pairs this message class travels on. The assignment is
            // "based on the source and the destination and the
            // classification of messages as requests vs. responses".
            if req {
                // Requests from the local node to home.
                v.insert(m.name, Role::Local, Role::Home, "VC0");
                // Snoop requests home → remote.
                v.insert(m.name, Role::Home, Role::Remote, "VC1");
                // Directory → home memory requests.
                let hh = if dedicated_mem_ops && (m.name == "mread" || m.name == "mwrite") {
                    "PATH"
                } else {
                    home_home_request
                };
                v.insert(m.name, Role::Home, Role::Home, hh);
            } else {
                // Responses remote → home.
                v.insert(m.name, Role::Remote, Role::Home, "VC2");
                // Responses home → local.
                v.insert(m.name, Role::Home, Role::Local, "VC3");
                // Memory → directory responses (same quad).
                v.insert(m.name, Role::Home, Role::Home, "VC2");
            }
        }
        if dedicated_mem_ops {
            v.dedicated.insert("PATH");
        }
        v
    }

    /// The initial 4-channel assignment.
    pub fn v0() -> VcAssignment {
        VcAssignment::classified("V0", "VC0", false)
    }

    /// VC4 added for directory→memory requests (pre-Figure-4 fix).
    pub fn v1() -> VcAssignment {
        VcAssignment::classified("V1", "VC4", false)
    }

    /// The fixed assignment: VC4 plus the dedicated directory→memory
    /// path for the directory's memory operations.
    pub fn v2() -> VcAssignment {
        VcAssignment::classified("V2", "VC4", true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_channel_semantics() {
        let v = VcAssignment::v1();
        // "VC0 carries requests from local to home"
        assert_eq!(v.lookup("readex", Role::Local, Role::Home), Some("VC0"));
        // "VC1 carries requests from home to remote"
        assert_eq!(v.lookup("sinv", Role::Home, Role::Remote), Some("VC1"));
        // "VC2 carries responses from remote to home"
        assert_eq!(v.lookup("idone", Role::Remote, Role::Home), Some("VC2"));
        // "VC3 carries responses from home to local"
        assert_eq!(v.lookup("compl", Role::Home, Role::Local), Some("VC3"));
        // "VC4 carries requests from home directory to home memory"
        assert_eq!(v.lookup("mread", Role::Home, Role::Home), Some("VC4"));
        assert_eq!(v.lookup("wb", Role::Home, Role::Home), Some("VC4"));
    }

    #[test]
    fn v0_shares_vc0_for_home_home() {
        let v = VcAssignment::v0();
        assert_eq!(v.lookup("mread", Role::Home, Role::Home), Some("VC0"));
        assert!(!v.is_dedicated("VC0"));
        assert_eq!(v.channel_count(), 4);
    }

    #[test]
    fn v2_dedicates_memory_ops() {
        let v = VcAssignment::v2();
        assert_eq!(v.lookup("mread", Role::Home, Role::Home), Some("PATH"));
        assert_eq!(v.lookup("mwrite", Role::Home, Role::Home), Some("PATH"));
        // The forwarded wb still rides VC4.
        assert_eq!(v.lookup("wb", Role::Home, Role::Home), Some("VC4"));
        assert!(v.is_dedicated("PATH"));
        assert_eq!(v.channel_count(), 5);
    }

    #[test]
    fn unknown_message_has_no_entry() {
        let v = VcAssignment::v1();
        assert_eq!(v.lookup("nonexistent", Role::Local, Role::Home), None);
    }

    #[test]
    fn relation_form_matches_entries() {
        let v = VcAssignment::v1();
        let rel = v.as_relation();
        assert_eq!(rel.arity(), 4);
        assert_eq!(rel.len(), v.entries().len());
        // Every catalogued message occurs on 3 role pairs.
        assert_eq!(rel.len(), messages::MESSAGES.len() * 3);
    }
}
