//! Table revision diffing.
//!
//! The paper: "The use of constraints also considerably reduces the
//! time to update the controller tables" — specifications went "through
//! several revisions" with the tables regenerated each time. This
//! module compares two revisions of a controller table keyed on its
//! input columns, so a constraint edit can be reviewed as
//! added/removed/changed *transitions* rather than a 500-row dump.

use ccsql_relalg::{Relation, Sym, Value};
use std::collections::HashMap;

/// One changed transition: same input combination, different outputs.
#[derive(Clone, Debug)]
pub struct ChangedRow {
    /// The input-column values (the transition's key).
    pub key: Vec<Value>,
    /// `(column, old, new)` for every differing output.
    pub deltas: Vec<(Sym, Value, Value)>,
}

/// The diff between two table revisions.
#[derive(Clone, Debug, Default)]
pub struct TableDiff {
    /// Input-column names used as the key.
    pub key_cols: Vec<Sym>,
    /// Transitions present only in the new revision (full rows).
    pub added: Vec<Vec<Value>>,
    /// Transitions present only in the old revision (full rows).
    pub removed: Vec<Vec<Value>>,
    /// Transitions whose outputs changed.
    pub changed: Vec<ChangedRow>,
}

impl TableDiff {
    /// Diff `old` against `new`, keying rows on `key_cols` (the input
    /// columns — a candidate key of a deterministic controller table).
    pub fn diff(
        old: &Relation,
        new: &Relation,
        key_cols: &[Sym],
    ) -> ccsql_relalg::Result<TableDiff> {
        if !old.schema().same_as(new.schema()) {
            return Err(ccsql_relalg::Error::SchemaMismatch(
                "diff requires identical schemas".into(),
            ));
        }
        let key_idx: Vec<usize> = key_cols
            .iter()
            .map(|c| old.schema().require(*c, "diff key"))
            .collect::<ccsql_relalg::Result<_>>()?;
        let key_of = |r: &[Value]| -> Vec<Value> { key_idx.iter().map(|&i| r[i]).collect() };

        let mut old_map: HashMap<Vec<Value>, usize> = HashMap::with_capacity(old.len());
        for (i, r) in old.rows().enumerate() {
            old_map.insert(key_of(r), i);
        }
        let mut diff = TableDiff {
            key_cols: key_cols.to_vec(),
            ..TableDiff::default()
        };
        let mut seen_old: Vec<bool> = vec![false; old.len()];
        for r in new.rows() {
            match old_map.get(&key_of(r)) {
                None => diff.added.push(r.to_vec()),
                Some(&oi) => {
                    seen_old[oi] = true;
                    let o = old.row(oi);
                    if o != r {
                        let deltas = old
                            .schema()
                            .columns()
                            .iter()
                            .enumerate()
                            .filter(|&(i, _)| o[i] != r[i])
                            .map(|(i, c)| (*c, o[i], r[i]))
                            .collect();
                        diff.changed.push(ChangedRow {
                            key: key_of(r),
                            deltas,
                        });
                    }
                }
            }
        }
        for (i, seen) in seen_old.iter().enumerate() {
            if !seen {
                diff.removed.push(old.row(i).to_vec());
            }
        }
        // Deterministic report order.
        diff.added.sort();
        diff.removed.sort();
        diff.changed.sort_by(|a, b| a.key.cmp(&b.key));
        Ok(diff)
    }

    /// Nothing changed.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.changed.is_empty()
    }

    /// Human-readable summary.
    pub fn render(&self, schema: &ccsql_relalg::Schema) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "{} added, {} removed, {} changed transition(s)",
            self.added.len(),
            self.removed.len(),
            self.changed.len()
        )
        .unwrap();
        let fmt_key = |key: &[Value]| {
            self.key_cols
                .iter()
                .zip(key)
                .map(|(c, v)| format!("{c}={v}"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let key_idx: Vec<usize> = self
            .key_cols
            .iter()
            .filter_map(|c| schema.index_of(*c))
            .collect();
        for r in &self.added {
            let key: Vec<Value> = key_idx.iter().map(|&i| r[i]).collect();
            writeln!(s, "  + {}", fmt_key(&key)).unwrap();
        }
        for r in &self.removed {
            let key: Vec<Value> = key_idx.iter().map(|&i| r[i]).collect();
            writeln!(s, "  - {}", fmt_key(&key)).unwrap();
        }
        for c in &self.changed {
            writeln!(s, "  ~ {}", fmt_key(&c.key)).unwrap();
            for (col, old, new) in &c.deltas {
                writeln!(s, "      {col}: {old} → {new}").unwrap();
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccsql_relalg::Relation;

    fn v(s: &str) -> Value {
        Value::sym(s)
    }

    fn table(rows: &[(&str, &str, &str)]) -> Relation {
        let mut r = Relation::with_columns(["inmsg", "dirst", "locmsg"]).unwrap();
        for (a, b, c) in rows {
            r.push_row(&[v(a), v(b), v(c)]).unwrap();
        }
        r
    }

    fn keys() -> Vec<Sym> {
        vec![Sym::intern("inmsg"), Sym::intern("dirst")]
    }

    #[test]
    fn identical_tables_diff_empty() {
        let a = table(&[("readex", "I", "NULL1"), ("data", "Busy-d", "edata")]);
        let d = TableDiff::diff(&a, &a, &keys()).unwrap();
        assert!(d.is_empty());
        assert!(d
            .render(a.schema())
            .contains("0 added, 0 removed, 0 changed"));
    }

    #[test]
    fn added_removed_changed_classified() {
        let old = table(&[
            ("readex", "I", "x"),
            ("data", "Busy-d", "edata"),
            ("flush", "I", "compl"),
        ]);
        let new = table(&[
            ("readex", "I", "x"),
            ("data", "Busy-d", "data"), // output changed
            ("wb", "MESI", "compl"),    // added; flush@I removed
        ]);
        let d = TableDiff::diff(&old, &new, &keys()).unwrap();
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.changed.len(), 1);
        assert_eq!(d.changed[0].deltas.len(), 1);
        let (col, o, n) = d.changed[0].deltas[0];
        assert_eq!(col.as_str(), "locmsg");
        assert_eq!(o, v("edata"));
        assert_eq!(n, v("data"));
        let rendered = d.render(old.schema());
        assert!(rendered.contains("+ inmsg=wb"));
        assert!(rendered.contains("- inmsg=flush"));
        assert!(rendered.contains("locmsg: edata → data"));
    }

    #[test]
    fn schema_mismatch_rejected() {
        let a = table(&[]);
        let b = Relation::with_columns(["x"]).unwrap();
        assert!(TableDiff::diff(&a, &b, &keys()).is_err());
        // Unknown key column.
        assert!(TableDiff::diff(&a, &a, &[Sym::intern("nope")]).is_err());
    }

    #[test]
    fn real_spec_revision_diff() {
        use ccsql_relalg::GenMode;
        // Two revisions of the Figure-3 spec: the "revision" forgets the
        // ownership transfer on completion (a classic spec bug).
        let ctx = crate::gen::GeneratedProtocol::context();
        let (old, _) = ccsql_protocol::directory::fig3_spec()
            .generate(GenMode::Incremental, &ctx)
            .unwrap();
        let broken = old.clone();
        // Simulate the regenerated table after the bad constraint edit:
        // data@Busy-d no longer sets nxtdirpv=repl.
        let s = broken.schema().clone();
        let pvcol = s.index_of_str("nxtdirpv").unwrap();
        let inmsg = s.index_of_str("inmsg").unwrap();
        let dirst = s.index_of_str("dirst").unwrap();
        let mut rows: Vec<Vec<Value>> = broken.rows().map(|r| r.to_vec()).collect();
        for r in &mut rows {
            if r[inmsg] == v("data") && r[dirst] == v("Busy-d") {
                r[pvcol] = Value::Null;
            }
        }
        let mut new_rel = Relation::new(s.clone());
        for r in rows {
            new_rel.push_row(&r).unwrap();
        }
        let keys = [
            Sym::intern("inmsg"),
            Sym::intern("dirst"),
            Sym::intern("dirpv"),
        ];
        let d = TableDiff::diff(&old, &new_rel, &keys).unwrap();
        assert_eq!(d.changed.len(), 1);
        assert!(d.added.is_empty() && d.removed.is_empty());
        assert!(d.render(&s).contains("nxtdirpv: repl → NULL"));
    }
}
