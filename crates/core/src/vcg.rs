//! The virtual channel dependency graph `VCG` and its cycle analysis.
//!
//! Vertices are virtual channels; there is an edge `(vc1, vc2)` for each
//! row of the protocol dependency table. "An absence of cycles in this
//! table indicates absence of deadlocks. Cycles in this table indicate
//! potential deadlocks and need to be analyzed."

use crate::depend::DependencyTable;
use ccsql_relalg::Sym;
use std::collections::HashMap;

/// One edge of the VCG with a witness dependency row.
#[derive(Clone, Copy, Debug)]
pub struct Edge {
    /// Held channel.
    pub from: Sym,
    /// Required channel.
    pub to: Sym,
    /// Index of a witness row in the dependency table.
    pub witness: usize,
}

/// A cycle: the channels of one non-trivial strongly connected
/// component, plus a concrete edge sequence realising a cycle.
#[derive(Clone, Debug)]
pub struct Cycle {
    /// Channels involved (sorted).
    pub channels: Vec<Sym>,
    /// A shortest closed walk through the component (edge list).
    pub edges: Vec<Edge>,
}

/// The virtual channel dependency graph.
pub struct Vcg {
    nodes: Vec<Sym>,
    /// adjacency: node index → (neighbour index, witness row).
    adj: Vec<Vec<(usize, usize)>>,
    node_index: HashMap<Sym, usize>,
}

impl Vcg {
    /// Build the VCG from a protocol dependency table.
    pub fn build(table: &DependencyTable) -> Vcg {
        let mut nodes: Vec<Sym> = Vec::new();
        let mut node_index: HashMap<Sym, usize> = HashMap::new();
        let intern = |nodes: &mut Vec<Sym>, node_index: &mut HashMap<Sym, usize>, s: Sym| {
            *node_index.entry(s).or_insert_with(|| {
                nodes.push(s);
                nodes.len() - 1
            })
        };
        let mut adj: Vec<Vec<(usize, usize)>> = Vec::new();
        let mut seen_edges: HashMap<(usize, usize), usize> = HashMap::new();
        // Iterate rows in order so the first witness of each edge is
        // deterministic across runs.
        for (wit, row) in table.rows.iter().enumerate() {
            let f = intern(&mut nodes, &mut node_index, row.input.vc);
            let t = intern(&mut nodes, &mut node_index, row.output.vc);
            adj.resize(nodes.len(), Vec::new());
            if let std::collections::hash_map::Entry::Vacant(e) = seen_edges.entry((f, t)) {
                e.insert(wit);
                adj[f].push((t, wit));
            }
        }
        adj.resize(nodes.len(), Vec::new());
        // Deterministic order.
        for a in &mut adj {
            a.sort_by_key(|&(t, _)| nodes[t]);
        }
        Vcg {
            nodes,
            adj,
            node_index,
        }
    }

    /// The channel names (graph vertices), sorted.
    pub fn channels(&self) -> Vec<Sym> {
        let mut n = self.nodes.clone();
        n.sort();
        n
    }

    /// All edges.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::new();
        for (f, nbrs) in self.adj.iter().enumerate() {
            for &(t, w) in nbrs {
                out.push(Edge {
                    from: self.nodes[f],
                    to: self.nodes[t],
                    witness: w,
                });
            }
        }
        out.sort_by_key(|e| (e.from, e.to));
        out
    }

    /// Does the graph contain an edge `from → to`?
    pub fn has_edge(&self, from: &str, to: &str) -> bool {
        let (Some(&f), Some(&t)) = (
            self.node_index.get(&Sym::intern(from)),
            self.node_index.get(&Sym::intern(to)),
        ) else {
            return false;
        };
        self.adj[f].iter().any(|&(n, _)| n == t)
    }

    /// Find all cycles: one [`Cycle`] per strongly connected component
    /// that is non-trivial (more than one node, or a self-loop).
    pub fn cycles(&self) -> Vec<Cycle> {
        let sccs = self.tarjan();
        if ccsql_obs::enabled() {
            let reg = ccsql_obs::global();
            reg.counter("vcg.analyses").inc();
            reg.gauge("vcg.channels").set(self.nodes.len() as f64);
            reg.gauge("vcg.edges")
                .set(self.adj.iter().map(|a| a.len()).sum::<usize>() as f64);
            reg.gauge("vcg.sccs").set(sccs.len() as f64);
            reg.gauge("vcg.scc_max_size")
                .set(sccs.iter().map(|s| s.len()).max().unwrap_or(0) as f64);
            for scc in &sccs {
                reg.histogram("vcg.scc_size").record(scc.len() as u64);
            }
        }
        let mut out = Vec::new();
        for scc in sccs {
            let nontrivial = scc.len() > 1 || self.adj[scc[0]].iter().any(|&(t, _)| t == scc[0]);
            if !nontrivial {
                continue;
            }
            let mut channels: Vec<Sym> = scc.iter().map(|&i| self.nodes[i]).collect();
            channels.sort();
            let edges = self.shortest_cycle_in(&scc);
            out.push(Cycle { channels, edges });
        }
        // Deterministic report order.
        out.sort_by(|a, b| a.channels.cmp(&b.channels));
        out
    }

    /// True iff the graph is acyclic (no deadlocks indicated).
    pub fn is_acyclic(&self) -> bool {
        self.cycles().is_empty()
    }

    /// Enumerate up to `limit` *simple* cycles (distinct channel
    /// sequences). The paper reports "several cycles leading to
    /// deadlocks" for the initial assignment; each simple cycle is one
    /// scenario to analyse.
    pub fn simple_cycles(&self, limit: usize) -> Vec<Vec<Edge>> {
        let mut out: Vec<Vec<Edge>> = Vec::new();
        let n = self.nodes.len();
        // DFS from each start node, only visiting nodes ≥ start (canonical
        // rooting avoids duplicates), collecting paths that close at start.
        for start in 0..n {
            if out.len() >= limit {
                break;
            }
            let mut path: Vec<Edge> = Vec::new();
            let mut on_path = vec![false; n];
            self.cycle_dfs(start, start, &mut path, &mut on_path, &mut out, limit);
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn cycle_dfs(
        &self,
        start: usize,
        v: usize,
        path: &mut Vec<Edge>,
        on_path: &mut [bool],
        out: &mut Vec<Vec<Edge>>,
        limit: usize,
    ) {
        if out.len() >= limit {
            return;
        }
        on_path[v] = true;
        for &(w, wit) in &self.adj[v] {
            if out.len() >= limit {
                break;
            }
            if w == start {
                let mut cycle = path.clone();
                cycle.push(Edge {
                    from: self.nodes[v],
                    to: self.nodes[start],
                    witness: wit,
                });
                out.push(cycle);
            } else if w > start && !on_path[w] {
                path.push(Edge {
                    from: self.nodes[v],
                    to: self.nodes[w],
                    witness: wit,
                });
                self.cycle_dfs(start, w, path, on_path, out, limit);
                path.pop();
            }
        }
        on_path[v] = false;
    }

    fn tarjan(&self) -> Vec<Vec<usize>> {
        // Iterative Tarjan SCC (graphs are tiny, but avoid recursion on
        // principle).
        let n = self.nodes.len();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs: Vec<Vec<usize>> = Vec::new();
        // Call stack frames: (node, neighbour cursor).
        let mut frames: Vec<(usize, usize)> = Vec::new();
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            frames.push((start, 0));
            index[start] = next_index;
            low[start] = next_index;
            next_index += 1;
            stack.push(start);
            on_stack[start] = true;
            while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
                if *cursor < self.adj[v].len() {
                    let (w, _) = self.adj[v][*cursor];
                    *cursor += 1;
                    if index[w] == usize::MAX {
                        index[w] = next_index;
                        low[w] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w] = true;
                        frames.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    frames.pop();
                    if let Some(&(parent, _)) = frames.last() {
                        low[parent] = low[parent].min(low[v]);
                    }
                    if low[v] == index[v] {
                        let mut scc = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack underflow");
                            on_stack[w] = false;
                            scc.push(w);
                            if w == v {
                                break;
                            }
                        }
                        scc.sort();
                        sccs.push(scc);
                    }
                }
            }
        }
        sccs
    }

    /// A shortest closed walk inside an SCC: BFS from each node back to
    /// itself, keeping edges within the component.
    fn shortest_cycle_in(&self, scc: &[usize]) -> Vec<Edge> {
        use std::collections::VecDeque;
        let inside: Vec<bool> = {
            let mut v = vec![false; self.nodes.len()];
            for &i in scc {
                v[i] = true;
            }
            v
        };
        let mut best: Option<Vec<Edge>> = None;
        for &start in scc {
            // Self-loop is the shortest possible cycle.
            if let Some(&(_, w)) = self.adj[start].iter().find(|&&(t, _)| t == start) {
                let e = vec![Edge {
                    from: self.nodes[start],
                    to: self.nodes[start],
                    witness: w,
                }];
                if best.as_ref().map(|b| b.len() > 1).unwrap_or(true) {
                    best = Some(e);
                }
                continue;
            }
            // BFS back to start.
            let mut prev: HashMap<usize, (usize, usize)> = HashMap::new();
            let mut q = VecDeque::new();
            q.push_back(start);
            let mut found: Option<usize> = None;
            'bfs: while let Some(v) = q.pop_front() {
                for &(t, w) in &self.adj[v] {
                    if !inside[t] {
                        continue;
                    }
                    if t == start {
                        prev.insert(usize::MAX, (v, w)); // closing edge
                        found = Some(v);
                        break 'bfs;
                    }
                    if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(t) {
                        e.insert((v, w));
                        q.push_back(t);
                    }
                }
            }
            if let Some(last) = found {
                // Reconstruct path start → … → last, then closing edge.
                let mut rev: Vec<Edge> = Vec::new();
                let (_, closing_w) = prev[&usize::MAX];
                rev.push(Edge {
                    from: self.nodes[last],
                    to: self.nodes[start],
                    witness: closing_w,
                });
                let mut cur = last;
                while cur != start {
                    let (p, w) = prev[&cur];
                    rev.push(Edge {
                        from: self.nodes[p],
                        to: self.nodes[cur],
                        witness: w,
                    });
                    cur = p;
                }
                rev.reverse();
                if best.as_ref().map(|b| b.len() > rev.len()).unwrap_or(true) {
                    best = Some(rev);
                }
            }
        }
        best.unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depend::{Assignment, DepRow, Provenance};
    use ccsql_protocol::topology::{QuadPlacement, Role};

    fn asg(msg: &str, vc: &str) -> Assignment {
        Assignment {
            msg: Sym::intern(msg),
            src: Role::Home,
            dest: Role::Home,
            vc: Sym::intern(vc),
        }
    }

    fn dep(from: (&str, &str), to: (&str, &str)) -> DepRow {
        DepRow {
            input: asg(from.0, from.1),
            output: asg(to.0, to.1),
            placement: QuadPlacement::AllDistinct,
            provenance: Provenance::Direct {
                controller: "T",
                row: 0,
            },
        }
    }

    fn table(rows: Vec<DepRow>) -> DependencyTable {
        DependencyTable { rows }
    }

    #[test]
    fn acyclic_graph_reports_no_cycles() {
        let t = table(vec![
            dep(("a", "VC0"), ("b", "VC1")),
            dep(("b", "VC1"), ("c", "VC2")),
            dep(("x", "VC0"), ("y", "VC3")),
        ]);
        let g = Vcg::build(&t);
        assert!(g.is_acyclic());
        assert_eq!(g.channels().len(), 4);
        assert_eq!(g.edges().len(), 3);
        assert!(g.has_edge("VC0", "VC1"));
        assert!(!g.has_edge("VC1", "VC0"));
    }

    #[test]
    fn two_cycle_detected() {
        let t = table(vec![
            dep(("idone", "VC2"), ("mread", "VC4")),
            dep(("wb", "VC4"), ("compl", "VC2")),
            dep(("r", "VC0"), ("s", "VC1")),
        ]);
        let g = Vcg::build(&t);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        let names: Vec<&str> = cycles[0].channels.iter().map(|c| c.as_str()).collect();
        assert_eq!(names, ["VC2", "VC4"]);
        assert_eq!(cycles[0].edges.len(), 2);
        // The closed walk really closes.
        let e = &cycles[0].edges;
        assert_eq!(e[0].from, e[e.len() - 1].to);
    }

    #[test]
    fn self_loop_detected() {
        let t = table(vec![dep(("readex", "VC0"), ("mread", "VC0"))]);
        let g = Vcg::build(&t);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].channels.len(), 1);
        assert_eq!(cycles[0].edges.len(), 1);
    }

    #[test]
    fn simple_cycles_enumerated() {
        // Triangle plus a self-loop plus a 2-cycle sharing a node.
        let t = table(vec![
            dep(("a", "VC0"), ("b", "VC1")),
            dep(("b", "VC1"), ("c", "VC2")),
            dep(("c", "VC2"), ("a", "VC0")),
            dep(("s", "VC0"), ("s", "VC0")),
            dep(("x", "VC1"), ("y", "VC0")),
        ]);
        let g = Vcg::build(&t);
        let cycles = g.simple_cycles(10);
        // self-loop VC0→VC0, triangle VC0→VC1→VC2→VC0, 2-cycle VC0↔VC1.
        assert_eq!(cycles.len(), 3, "{cycles:?}");
        for c in &cycles {
            assert_eq!(c.first().unwrap().from, c.last().unwrap().to);
        }
        // The limit is honoured.
        assert_eq!(g.simple_cycles(1).len(), 1);
    }

    #[test]
    fn multiple_sccs_reported_deterministically() {
        let t = table(vec![
            dep(("a", "VC0"), ("b", "VC1")),
            dep(("b", "VC1"), ("a", "VC0")),
            dep(("c", "VC2"), ("d", "VC4")),
            dep(("d", "VC4"), ("c", "VC2")),
        ]);
        let g = Vcg::build(&t);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 2);
        assert!(cycles[0].channels < cycles[1].channels);
    }

    #[test]
    fn three_cycle_walk_reconstructed() {
        let t = table(vec![
            dep(("a", "VC0"), ("b", "VC1")),
            dep(("b", "VC1"), ("c", "VC2")),
            dep(("c", "VC2"), ("a", "VC0")),
        ]);
        let g = Vcg::build(&t);
        let cycles = g.cycles();
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].edges.len(), 3);
        // Consecutive edges chain.
        for w in cycles[0].edges.windows(2) {
            assert_eq!(w[0].to, w[1].from);
        }
    }
}
