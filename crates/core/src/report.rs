//! Human-readable deadlock reports: reconstruct a Figure-4-style
//! narrative from the cycle witnesses of the dependency analysis.

use crate::depend::{DependencyTable, MatchMode, Provenance};
use crate::gen::GeneratedProtocol;
use crate::vcg::{Cycle, Vcg};

/// A full deadlock-analysis report for one virtual-channel assignment.
pub struct DeadlockReport {
    /// The assignment name (`V0`, `V1`, `V2`).
    pub assignment: &'static str,
    /// Total dependency rows analysed.
    pub dependency_rows: usize,
    /// Channels in the VCG.
    pub channels: Vec<String>,
    /// VCG edges as `(from, to)` strings.
    pub edges: Vec<(String, String)>,
    /// The cycles found (one per non-trivial strongly connected
    /// component).
    pub cycles: Vec<Cycle>,
    /// Distinct *simple* cycles (enumerated up to a cap of 32) — the
    /// paper's "several cycles leading to deadlocks".
    pub simple_cycles: usize,
    /// True when the simple-cycle enumeration hit its cap, i.e. the
    /// count above is a lower bound rather than an exact figure.
    pub simple_cycles_truncated: bool,
    /// Rendered narratives, one per cycle.
    pub narratives: Vec<String>,
}

/// Analyse a dependency table and narrate every cycle.
pub fn deadlock_report(
    gen: &GeneratedProtocol,
    assignment: &'static str,
    table: &DependencyTable,
) -> DeadlockReport {
    const SIMPLE_CYCLE_CAP: usize = 32;
    let vcg = Vcg::build(table);
    let cycles = vcg.cycles();
    let narratives = cycles
        .iter()
        .map(|c| narrate_cycle(gen, table, c))
        .collect();
    // Probe one past the cap so truncation is detectable rather than
    // silently reported as an exact count.
    let enumerated = vcg.simple_cycles(SIMPLE_CYCLE_CAP + 1).len();
    let simple_cycles_truncated = enumerated > SIMPLE_CYCLE_CAP;
    if simple_cycles_truncated && ccsql_obs::enabled() {
        ccsql_obs::global()
            .counter("report.simple_cycles_truncated")
            .inc();
    }
    DeadlockReport {
        assignment,
        simple_cycles: enumerated.min(SIMPLE_CYCLE_CAP),
        simple_cycles_truncated,
        dependency_rows: table.rows.len(),
        channels: vcg.channels().iter().map(|c| c.to_string()).collect(),
        edges: vcg
            .edges()
            .iter()
            .map(|e| (e.from.to_string(), e.to.to_string()))
            .collect(),
        cycles,
        narratives,
    }
}

/// Render one cycle in the style of the paper's Figure-4 analysis:
/// the channel cycle, the dependency rows realising each edge, and the
/// underlying controller-table rows.
pub fn narrate_cycle(gen: &GeneratedProtocol, table: &DependencyTable, cycle: &Cycle) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let chain: Vec<&str> = cycle.channels.iter().map(|c| c.as_str()).collect();
    writeln!(
        s,
        "POTENTIAL DEADLOCK: cyclic dependency involving channel(s) {}",
        chain.join(", ")
    )
    .unwrap();
    for e in &cycle.edges {
        let row = &table.rows[e.witness];
        writeln!(
            s,
            "  {} -> {}: ({}, {}, {}, {}) depends on ({}, {}, {}, {})  [placement {}]",
            e.from,
            e.to,
            row.input.msg,
            row.input.src,
            row.input.dest,
            row.input.vc,
            row.output.msg,
            row.output.src,
            row.output.dest,
            row.output.vc,
            row.placement.notation(),
        )
        .unwrap();
        match row.provenance {
            Provenance::Direct { controller, row: r } => {
                writeln!(
                    s,
                    "      direct from controller table {controller}, row {r}"
                )
                .unwrap();
                if let Some(desc) = describe_controller_row(gen, controller, r) {
                    writeln!(s, "        {desc}").unwrap();
                }
            }
            Provenance::Composed { mode, .. } => {
                let wits = table.direct_witnesses(e.witness);
                let mode = match mode {
                    MatchMode::Exact => "exact match",
                    MatchMode::IgnoreMessages => "ignoring messages",
                };
                writeln!(s, "      composed ({mode}) from:").unwrap();
                for (c, r) in wits {
                    if let Some(desc) = describe_controller_row(gen, c, r) {
                        writeln!(s, "        {c}[{r}]: {desc}").unwrap();
                    }
                }
            }
        }
    }
    s
}

/// One-line description of a controller-table row (its message flow).
fn describe_controller_row(
    gen: &GeneratedProtocol,
    controller: &str,
    row: usize,
) -> Option<String> {
    let ctrl = gen.controller(controller)?;
    let table = gen.table(controller).ok()?;
    if row >= table.len() {
        return None;
    }
    let r = table.row(row);
    let schema = table.schema();
    let mut parts = Vec::new();
    for t in &ctrl.input_triples {
        let m = r[schema.index_of_str(t.msg)?];
        if !m.is_null() {
            parts.push(format!(
                "in {}({}→{})",
                m,
                r[schema.index_of_str(t.src)?],
                r[schema.index_of_str(t.dest)?]
            ));
        }
    }
    for t in &ctrl.output_triples {
        let m = r[schema.index_of_str(t.msg)?];
        if !m.is_null() {
            parts.push(format!(
                "out {}({}→{})",
                m,
                r[schema.index_of_str(t.src)?],
                r[schema.index_of_str(t.dest)?]
            ));
        }
    }
    Some(parts.join(", "))
}

impl DeadlockReport {
    /// Render the report as one canonical JSON object (trailing
    /// newline), carrying for every edge of every cycle the full
    /// witness dependency-table row — assignments, placement, and
    /// provenance down to the controller-table rows that realise it.
    pub fn render_json(&self, table: &DependencyTable) -> String {
        use ccsql_obs::json::JsonObj;
        let strs = |xs: &[String]| -> String {
            let mut s = String::from("[");
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                ccsql_obs::json::write_json_str(&mut s, x);
            }
            s.push(']');
            s
        };
        let assign = |a: &crate::depend::Assignment| -> String {
            JsonObj::new()
                .str("msg", a.msg.as_str())
                .str("src", a.src.as_str())
                .str("dest", a.dest.as_str())
                .str("vc", a.vc.as_str())
                .finish()
        };
        let witness = |i: usize| -> String {
            let row = &table.rows[i];
            let prov = match row.provenance {
                Provenance::Direct { controller, row } => JsonObj::new()
                    .str("kind", "direct")
                    .str("controller", controller)
                    .u64("row", row as u64)
                    .finish(),
                Provenance::Composed { left, right, mode } => {
                    let mut wits = String::from("[");
                    for (wi, (c, r)) in table.direct_witnesses(i).into_iter().enumerate() {
                        if wi > 0 {
                            wits.push(',');
                        }
                        wits.push_str(
                            &JsonObj::new()
                                .str("controller", c)
                                .u64("row", r as u64)
                                .finish(),
                        );
                    }
                    wits.push(']');
                    JsonObj::new()
                        .str("kind", "composed")
                        .str(
                            "mode",
                            match mode {
                                MatchMode::Exact => "exact",
                                MatchMode::IgnoreMessages => "ignore_messages",
                            },
                        )
                        .u64("left", left as u64)
                        .u64("right", right as u64)
                        .raw("direct_witnesses", &wits)
                        .finish()
                }
            };
            JsonObj::new()
                .u64("index", i as u64)
                .raw("input", &assign(&row.input))
                .raw("output", &assign(&row.output))
                .str("placement", row.placement.notation())
                .raw("provenance", &prov)
                .finish()
        };
        let mut cycles = String::from("[");
        for (ci, c) in self.cycles.iter().enumerate() {
            if ci > 0 {
                cycles.push(',');
            }
            let chans: Vec<String> = c.channels.iter().map(|x| x.to_string()).collect();
            let mut edges = String::from("[");
            for (ei, e) in c.edges.iter().enumerate() {
                if ei > 0 {
                    edges.push(',');
                }
                edges.push_str(
                    &JsonObj::new()
                        .str("from", e.from.as_str())
                        .str("to", e.to.as_str())
                        .raw("witness", &witness(e.witness))
                        .finish(),
                );
            }
            edges.push(']');
            cycles.push_str(
                &JsonObj::new()
                    .raw("channels", &strs(&chans))
                    .raw("edges", &edges)
                    .finish(),
            );
        }
        cycles.push(']');
        let mut edges = String::from("[");
        for (i, (from, to)) in self.edges.iter().enumerate() {
            if i > 0 {
                edges.push(',');
            }
            edges.push_str(&JsonObj::new().str("from", from).str("to", to).finish());
        }
        edges.push(']');
        let mut out = JsonObj::new()
            .str("kind", "deadlock")
            .str("assignment", self.assignment)
            .u64("dependency_rows", self.dependency_rows as u64)
            .raw("channels", &strs(&self.channels))
            .raw("edges", &edges)
            .raw("cycles", &cycles)
            .u64("simple_cycles", self.simple_cycles as u64)
            .raw(
                "simple_cycles_truncated",
                if self.simple_cycles_truncated {
                    "true"
                } else {
                    "false"
                },
            )
            .raw(
                "deadlock_free",
                if self.cycles.is_empty() {
                    "true"
                } else {
                    "false"
                },
            )
            .finish();
        out.push('\n');
        out
    }

    /// Render the whole report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "=== Deadlock analysis for assignment {} ===",
            self.assignment
        )
        .unwrap();
        writeln!(
            s,
            "protocol dependency table: {} rows; VCG: {} channels, {} edges",
            self.dependency_rows,
            self.channels.len(),
            self.edges.len()
        )
        .unwrap();
        if self.cycles.is_empty() {
            writeln!(s, "no cycles: absence of deadlocks established").unwrap();
        } else {
            writeln!(
                s,
                "{} cyclic component(s), {}{} distinct simple cycle(s):",
                self.cycles.len(),
                if self.simple_cycles_truncated {
                    "≥"
                } else {
                    ""
                },
                self.simple_cycles
            )
            .unwrap();
            for n in &self.narratives {
                s.push_str(n);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depend::{protocol_dependency_table, AnalysisConfig};
    use crate::vc::VcAssignment;
    use std::sync::OnceLock;

    fn generated() -> &'static GeneratedProtocol {
        static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
        GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
    }

    #[test]
    fn v1_report_mentions_vc2_vc4() {
        let g = generated();
        let t =
            protocol_dependency_table(g, &VcAssignment::v1(), &AnalysisConfig::default()).unwrap();
        let rep = deadlock_report(g, "V1", &t);
        assert!(!rep.cycles.is_empty());
        let rendered = rep.render();
        assert!(rendered.contains("VC2"));
        assert!(rendered.contains("VC4"));
        assert!(rendered.contains("POTENTIAL DEADLOCK"));
    }

    #[test]
    fn v1_json_report_carries_edge_witnesses() {
        let g = generated();
        let t =
            protocol_dependency_table(g, &VcAssignment::v1(), &AnalysisConfig::default()).unwrap();
        let rep = deadlock_report(g, "V1", &t);
        let json = rep.render_json(&t);
        assert_eq!(json, rep.render_json(&t), "byte-identical across renders");
        assert!(json.ends_with('\n'));
        assert!(json.contains(r#""kind":"deadlock""#));
        assert!(json.contains(r#""deadlock_free":false"#));
        // Every cycle edge names its witness row with full provenance.
        assert!(json.contains(r#""witness":{"index":"#));
        assert!(json.contains(r#""placement":"#));
        assert!(json.contains(r#""kind":"direct""#) || json.contains(r#""kind":"composed""#));
    }

    #[test]
    fn v2_report_is_clean() {
        let g = generated();
        let t =
            protocol_dependency_table(g, &VcAssignment::v2(), &AnalysisConfig::default()).unwrap();
        let rep = deadlock_report(g, "V2", &t);
        assert!(rep.cycles.is_empty(), "cycles: {:?}", rep.render());
        assert!(rep.render().contains("absence of deadlocks"));
    }
}
