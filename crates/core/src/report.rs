//! Human-readable deadlock reports: reconstruct a Figure-4-style
//! narrative from the cycle witnesses of the dependency analysis.

use crate::depend::{DependencyTable, MatchMode, Provenance};
use crate::gen::GeneratedProtocol;
use crate::vcg::{Cycle, Vcg};

/// A full deadlock-analysis report for one virtual-channel assignment.
pub struct DeadlockReport {
    /// The assignment name (`V0`, `V1`, `V2`).
    pub assignment: &'static str,
    /// Total dependency rows analysed.
    pub dependency_rows: usize,
    /// Channels in the VCG.
    pub channels: Vec<String>,
    /// VCG edges as `(from, to)` strings.
    pub edges: Vec<(String, String)>,
    /// The cycles found (one per non-trivial strongly connected
    /// component).
    pub cycles: Vec<Cycle>,
    /// Distinct *simple* cycles (enumerated up to a cap of 32) — the
    /// paper's "several cycles leading to deadlocks".
    pub simple_cycles: usize,
    /// True when the simple-cycle enumeration hit its cap, i.e. the
    /// count above is a lower bound rather than an exact figure.
    pub simple_cycles_truncated: bool,
    /// Rendered narratives, one per cycle.
    pub narratives: Vec<String>,
}

/// Analyse a dependency table and narrate every cycle.
pub fn deadlock_report(
    gen: &GeneratedProtocol,
    assignment: &'static str,
    table: &DependencyTable,
) -> DeadlockReport {
    const SIMPLE_CYCLE_CAP: usize = 32;
    let vcg = Vcg::build(table);
    let cycles = vcg.cycles();
    let narratives = cycles
        .iter()
        .map(|c| narrate_cycle(gen, table, c))
        .collect();
    // Probe one past the cap so truncation is detectable rather than
    // silently reported as an exact count.
    let enumerated = vcg.simple_cycles(SIMPLE_CYCLE_CAP + 1).len();
    let simple_cycles_truncated = enumerated > SIMPLE_CYCLE_CAP;
    if simple_cycles_truncated && ccsql_obs::enabled() {
        ccsql_obs::global()
            .counter("report.simple_cycles_truncated")
            .inc();
    }
    DeadlockReport {
        assignment,
        simple_cycles: enumerated.min(SIMPLE_CYCLE_CAP),
        simple_cycles_truncated,
        dependency_rows: table.rows.len(),
        channels: vcg.channels().iter().map(|c| c.to_string()).collect(),
        edges: vcg
            .edges()
            .iter()
            .map(|e| (e.from.to_string(), e.to.to_string()))
            .collect(),
        cycles,
        narratives,
    }
}

/// Render one cycle in the style of the paper's Figure-4 analysis:
/// the channel cycle, the dependency rows realising each edge, and the
/// underlying controller-table rows.
pub fn narrate_cycle(gen: &GeneratedProtocol, table: &DependencyTable, cycle: &Cycle) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    let chain: Vec<&str> = cycle.channels.iter().map(|c| c.as_str()).collect();
    writeln!(
        s,
        "POTENTIAL DEADLOCK: cyclic dependency involving channel(s) {}",
        chain.join(", ")
    )
    .unwrap();
    for e in &cycle.edges {
        let row = &table.rows[e.witness];
        writeln!(
            s,
            "  {} -> {}: ({}, {}, {}, {}) depends on ({}, {}, {}, {})  [placement {}]",
            e.from,
            e.to,
            row.input.msg,
            row.input.src,
            row.input.dest,
            row.input.vc,
            row.output.msg,
            row.output.src,
            row.output.dest,
            row.output.vc,
            row.placement.notation(),
        )
        .unwrap();
        match row.provenance {
            Provenance::Direct { controller, row: r } => {
                writeln!(
                    s,
                    "      direct from controller table {controller}, row {r}"
                )
                .unwrap();
                if let Some(desc) = describe_controller_row(gen, controller, r) {
                    writeln!(s, "        {desc}").unwrap();
                }
            }
            Provenance::Composed { mode, .. } => {
                let wits = table.direct_witnesses(e.witness);
                let mode = match mode {
                    MatchMode::Exact => "exact match",
                    MatchMode::IgnoreMessages => "ignoring messages",
                };
                writeln!(s, "      composed ({mode}) from:").unwrap();
                for (c, r) in wits {
                    if let Some(desc) = describe_controller_row(gen, c, r) {
                        writeln!(s, "        {c}[{r}]: {desc}").unwrap();
                    }
                }
            }
        }
    }
    s
}

/// One-line description of a controller-table row (its message flow).
fn describe_controller_row(
    gen: &GeneratedProtocol,
    controller: &str,
    row: usize,
) -> Option<String> {
    let ctrl = gen.controller(controller)?;
    let table = gen.table(controller).ok()?;
    if row >= table.len() {
        return None;
    }
    let r = table.row(row);
    let schema = table.schema();
    let mut parts = Vec::new();
    for t in &ctrl.input_triples {
        let m = r[schema.index_of_str(t.msg)?];
        if !m.is_null() {
            parts.push(format!(
                "in {}({}→{})",
                m,
                r[schema.index_of_str(t.src)?],
                r[schema.index_of_str(t.dest)?]
            ));
        }
    }
    for t in &ctrl.output_triples {
        let m = r[schema.index_of_str(t.msg)?];
        if !m.is_null() {
            parts.push(format!(
                "out {}({}→{})",
                m,
                r[schema.index_of_str(t.src)?],
                r[schema.index_of_str(t.dest)?]
            ));
        }
    }
    Some(parts.join(", "))
}

impl DeadlockReport {
    /// Render the whole report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "=== Deadlock analysis for assignment {} ===",
            self.assignment
        )
        .unwrap();
        writeln!(
            s,
            "protocol dependency table: {} rows; VCG: {} channels, {} edges",
            self.dependency_rows,
            self.channels.len(),
            self.edges.len()
        )
        .unwrap();
        if self.cycles.is_empty() {
            writeln!(s, "no cycles: absence of deadlocks established").unwrap();
        } else {
            writeln!(
                s,
                "{} cyclic component(s), {}{} distinct simple cycle(s):",
                self.cycles.len(),
                if self.simple_cycles_truncated {
                    "≥"
                } else {
                    ""
                },
                self.simple_cycles
            )
            .unwrap();
            for n in &self.narratives {
                s.push_str(n);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depend::{protocol_dependency_table, AnalysisConfig};
    use crate::vc::VcAssignment;
    use std::sync::OnceLock;

    fn generated() -> &'static GeneratedProtocol {
        static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
        GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
    }

    #[test]
    fn v1_report_mentions_vc2_vc4() {
        let g = generated();
        let t =
            protocol_dependency_table(g, &VcAssignment::v1(), &AnalysisConfig::default()).unwrap();
        let rep = deadlock_report(g, "V1", &t);
        assert!(!rep.cycles.is_empty());
        let rendered = rep.render();
        assert!(rendered.contains("VC2"));
        assert!(rendered.contains("VC4"));
        assert!(rendered.contains("POTENTIAL DEADLOCK"));
    }

    #[test]
    fn v2_report_is_clean() {
        let g = generated();
        let t =
            protocol_dependency_table(g, &VcAssignment::v2(), &AnalysisConfig::default()).unwrap();
        let rep = deadlock_report(g, "V2", &t);
        assert!(rep.cycles.is_empty(), "cycles: {:?}", rep.render());
        assert!(rep.render().contains("absence of deadlocks"));
    }
}
