//! Static transaction walking: derive Figure-2-style message sequence
//! charts for every transaction family directly from the generated
//! tables.
//!
//! The paper's enhanced architecture specification "completely
//! describ\[es\] the behavior of all participating system controllers
//! over all transactions" — this module turns that table description
//! back into the per-transaction charts architects read (Figure 2),
//! and statically verifies that **every** transaction family runs to
//! completion: request in, bounded sequence of exchanges, completion
//! out, busy directory deallocated.

use crate::gen::GeneratedProtocol;
use ccsql_protocol::messages;
use ccsql_relalg::{Relation, Sym, Value};

/// One arc of a message sequence chart.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Arc {
    /// Sequence number (arcs triggered by the same event share it, as
    /// in the paper's `2a`/`2b`).
    pub step: usize,
    /// Sender ("local", "D", "remote", "mem").
    pub from: &'static str,
    /// Receiver.
    pub to: &'static str,
    /// Message name.
    pub msg: Sym,
}

impl std::fmt::Display for Arc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}. {} → {} : {}",
            self.step, self.from, self.to, self.msg
        )
    }
}

/// A fully walked transaction.
#[derive(Clone, Debug)]
pub struct Walk {
    /// The initiating request.
    pub request: Sym,
    /// Initial directory state (`I`, `SI` or `MESI`) and encoding.
    pub start: (&'static str, &'static str),
    /// The arcs, in order.
    pub arcs: Vec<Arc>,
    /// Directory state after completion.
    pub final_dirst: Sym,
    /// Did the walk end with a completed transaction and an idle busy
    /// directory?
    pub completed: bool,
}

impl Walk {
    /// Render as a Figure-2 style chart.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "{} @ dirst={} (pv {}):",
            self.request, self.start.0, self.start.1
        )
        .unwrap();
        for a in &self.arcs {
            writeln!(s, "  {a}").unwrap();
        }
        writeln!(
            s,
            "  ⇒ {} (final dirst {})",
            if self.completed {
                "completed"
            } else {
                "INCOMPLETE"
            },
            self.final_dirst
        )
        .unwrap();
        s
    }
}

/// Symbolic machine state for one isolated transaction.
struct WalkState {
    dirst: Sym,
    /// Concrete sharer count behind the `zero/one/gone` encoding.
    sharers: u32,
    bdirst: Sym,
    pending: u32,
}

fn encoding(n: u32) -> &'static str {
    match n {
        0 => "zero",
        1 => "one",
        _ => "gone",
    }
}

/// Walk one transaction family from a given directory state. `sharers`
/// picks the concrete count behind the encoding (e.g. 2 for `gone`).
/// Responses are processed data-first (the paper's Figure-2 ordering);
/// the isolated transaction is deterministic beyond that choice.
pub fn walk(
    gen: &GeneratedProtocol,
    request: &str,
    dirst: &str,
    sharers: u32,
) -> ccsql_relalg::Result<Walk> {
    let d = gen.table("D")?;
    let m = gen.table("M")?;
    let r = gen.table("R")?;
    let i_sym = Sym::intern("I");
    let start_enc = encoding(sharers);

    let mut st = WalkState {
        dirst: Sym::intern(dirst),
        sharers,
        bdirst: i_sym,
        pending: 0,
    };
    let mut arcs: Vec<Arc> = Vec::new();
    let mut step = 1;
    // The multiset of responses in flight to D: (msg, from).
    let mut inflight: Vec<(Sym, &'static str)> = Vec::new();
    let mut completed = false;

    arcs.push(Arc {
        step,
        from: "local",
        to: "D",
        msg: Sym::intern(request),
    });
    let mut inmsg: Sym = Sym::intern(request);

    // Remote line state assumption for snoops: MESI owner holds M,
    // SI sharers hold S.
    let mut remote_line = match dirst {
        "MESI" => Sym::intern("M"),
        "SI" => Sym::intern("S"),
        _ => i_sym,
    };

    for _ in 0..32 {
        // Look up D's row for the current input.
        let row = lookup_d(d, inmsg, &st)?;
        let get = |col: &str| row_get(d, row, col);
        step += 1;

        // Apply busy/dir updates (mirroring the simulator's semantics).
        let snooped = get("remmsg").is_some();
        match get("bdirupd").map(|s| s.as_str()) {
            Some("alloc") => {
                st.bdirst = get("nxtbdirst").expect("alloc names a state");
                st.pending = if snooped {
                    st.sharers.max(1)
                } else if get("nxtbdirpv").map(|s| s.as_str()) == Some("repl") {
                    st.sharers
                } else {
                    0
                };
            }
            Some("write") => {
                if let Some(nb) = get("nxtbdirst") {
                    st.bdirst = nb;
                }
                if get("nxtbdirpv").map(|s| s.as_str()) == Some("dec") {
                    st.pending = st.pending.saturating_sub(1);
                }
            }
            Some("dealloc") => {
                st.bdirst = i_sym;
                st.pending = 0;
            }
            _ => {}
        }
        match get("dirupd").map(|s| s.as_str()) {
            Some("dealloc") => {
                st.dirst = i_sym;
                st.sharers = 0;
            }
            Some("alloc") | Some("write") => {
                if let Some(nd) = get("nxtdirst") {
                    st.dirst = nd;
                }
                match get("nxtdirpv").map(|s| s.as_str()) {
                    Some("inc") => st.sharers += 1,
                    Some("dec") => st.sharers = st.sharers.saturating_sub(1),
                    Some("repl") => st.sharers = 1,
                    Some("drepl") => {
                        st.sharers = st.sharers.saturating_sub(1).max(1);
                    }
                    _ => {}
                }
            }
            _ => {}
        }

        // Emit output arcs and derive the eventual responses.
        if let Some(loc) = get("locmsg") {
            arcs.push(Arc {
                step,
                from: "D",
                to: "local",
                msg: loc,
            });
        }
        if let Some(rem) = get("remmsg") {
            // One snoop per sharer; chart one representative arc.
            arcs.push(Arc {
                step,
                from: "D",
                to: "remote",
                msg: rem,
            });
            // The remote access cache answers per its table.
            let rsp = lookup_r(r, rem, remote_line)?;
            if let Some(nxt) = row_get(r, rsp, "nxtlinest") {
                remote_line = nxt;
            }
            let answer = row_get(r, rsp, "rspmsg").expect("snoops answered");
            for _ in 0..st.pending.max(1) {
                inflight.push((answer, "remote"));
            }
        }
        if let Some(mm) = get("memmsg") {
            arcs.push(Arc {
                step,
                from: "D",
                to: "mem",
                msg: mm,
            });
            let mrow = lookup_m(m, mm)?;
            if let Some(rsp) = row_get(m, mrow, "outmsg") {
                inflight.push((rsp, "mem"));
            }
        }
        if row_get(d, row, "cmpl") == Some(Sym::intern("yes")) {
            completed = true;
        }
        if completed || st.bdirst == i_sym {
            break;
        }

        // Deliver the next response: data-class responses first (the
        // Figure-2 ordering), then snoop acknowledgements.
        inflight.sort_by_key(|(msg, _)| {
            let m = msg.as_str();
            (m != "data" && m != "sdata" && m != "iodata", *msg)
        });
        let Some((next, from)) = inflight.first().copied() else {
            break; // nothing in flight and not complete: incomplete walk
        };
        inflight.remove(0);
        arcs.push(Arc {
            step: step + 1,
            from,
            to: "D",
            msg: next,
        });
        step += 1;
        inmsg = next;
    }

    Ok(Walk {
        request: Sym::intern(request),
        start: (Sym::intern(dirst).as_str(), start_enc),
        arcs,
        final_dirst: st.dirst,
        completed: completed && st.bdirst == i_sym,
    })
}

fn lookup_d(d: &Relation, inmsg: Sym, st: &WalkState) -> ccsql_relalg::Result<usize> {
    let s = d.schema();
    let cols = [
        s.index_of_str("inmsg").unwrap(),
        s.index_of_str("dirst").unwrap(),
        s.index_of_str("dirpv").unwrap(),
        s.index_of_str("bdirst").unwrap(),
        s.index_of_str("bdirpv").unwrap(),
    ];
    let pv = Value::sym(encoding(st.sharers));
    let bpv = Value::sym(match st.pending {
        0 => "zero",
        1 => "one",
        _ => "gone",
    });
    let want = [
        Value::Sym(inmsg),
        Value::Sym(st.dirst),
        pv,
        Value::Sym(st.bdirst),
        bpv,
    ];
    for (i, row) in d.rows().enumerate() {
        if cols.iter().zip(&want).all(|(&c, w)| row[c] == *w) {
            return Ok(i);
        }
    }
    Err(ccsql_relalg::Error::BadSpec(format!(
        "no D row for {want:?} during walk"
    )))
}

fn lookup_r(r: &Relation, snoop: Sym, linest: Sym) -> ccsql_relalg::Result<usize> {
    let s = r.schema();
    let mi = s.index_of_str("inmsg").unwrap();
    let li = s.index_of_str("linest").unwrap();
    for (i, row) in r.rows().enumerate() {
        if row[mi] == Value::Sym(snoop) && row[li] == Value::Sym(linest) {
            return Ok(i);
        }
    }
    Err(ccsql_relalg::Error::BadSpec(format!(
        "no R row for {snoop}@{linest}"
    )))
}

fn lookup_m(m: &Relation, msg: Sym) -> ccsql_relalg::Result<usize> {
    let s = m.schema();
    let mi = s.index_of_str("inmsg").unwrap();
    for (i, row) in m.rows().enumerate() {
        if row[mi] == Value::Sym(msg) {
            return Ok(i);
        }
    }
    Err(ccsql_relalg::Error::BadSpec(format!("no M row for {msg}")))
}

fn row_get(rel: &Relation, row: usize, col: &str) -> Option<Sym> {
    rel.row(row)[rel.schema().index_of_str(col)?].as_sym()
}

/// Every `(request, dirst, sharers)` start the directory table accepts
/// without a retry — the transaction families to chart.
pub fn all_starts(gen: &GeneratedProtocol) -> ccsql_relalg::Result<Vec<(String, String, u32)>> {
    let d = gen.table("D")?;
    let s = d.schema();
    let inmsg = s.index_of_str("inmsg").unwrap();
    let dirst = s.index_of_str("dirst").unwrap();
    let dirpv = s.index_of_str("dirpv").unwrap();
    let bdirst = s.index_of_str("bdirst").unwrap();
    let locmsg = s.index_of_str("locmsg").unwrap();
    let mut out = Vec::new();
    for r in d.rows() {
        let m = r[inmsg].to_string();
        if !messages::is_request(&m) || m == "Dfdback" {
            continue;
        }
        if r[bdirst] != Value::sym("I") || r[locmsg] == Value::sym("retry") {
            continue;
        }
        let sharers = match r[dirpv].to_string().as_str() {
            "zero" => 0,
            "one" => 1,
            _ => 2,
        };
        out.push((m, r[dirst].to_string(), sharers));
    }
    out.sort();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::OnceLock;

    fn generated() -> &'static GeneratedProtocol {
        static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
        GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
    }

    #[test]
    fn readex_at_si_matches_figure_2() {
        let w = walk(generated(), "readex", "SI", 1).unwrap();
        assert!(w.completed, "{}", w.render());
        let seq: Vec<String> = w
            .arcs
            .iter()
            .map(|a| format!("{}→{}:{}", a.from, a.to, a.msg))
            .collect();
        // Figure 2: readex in; sinv + mread out simultaneously; data
        // then idone back; compl out.
        assert_eq!(seq[0], "local→D:readex");
        assert!(seq.contains(&"D→remote:sinv".to_string()));
        assert!(seq.contains(&"D→mem:mread".to_string()));
        assert!(seq.contains(&"mem→D:data".to_string()));
        assert!(seq.contains(&"remote→D:idone".to_string()));
        assert!(seq.contains(&"D→local:compl".to_string()));
        assert_eq!(w.final_dirst.as_str(), "MESI");
        // sinv and mread share a step number (the paper's 2a/2b).
        let sinv = w.arcs.iter().find(|a| a.msg.as_str() == "sinv").unwrap();
        let mread = w.arcs.iter().find(|a| a.msg.as_str() == "mread").unwrap();
        assert_eq!(sinv.step, mread.step);
    }

    #[test]
    fn every_transaction_family_completes() {
        let gen = generated();
        let starts = all_starts(gen).unwrap();
        assert!(starts.len() >= 20, "only {} starts", starts.len());
        for (req, dirst, sharers) in starts {
            let w = walk(gen, &req, &dirst, sharers).unwrap();
            assert!(
                w.completed,
                "{req}@{dirst}({sharers}) did not complete:\n{}",
                w.render()
            );
            assert!(w.arcs.len() >= 2);
            // The requester always hears back.
            assert!(
                w.arcs.iter().any(|a| a.to == "local" && a.from == "D"),
                "{req}@{dirst}: no response to the requester\n{}",
                w.render()
            );
        }
    }

    #[test]
    fn walks_are_bounded() {
        // No family needs more than a dozen arcs in isolation.
        let gen = generated();
        for (req, dirst, sharers) in all_starts(gen).unwrap() {
            let w = walk(gen, &req, &dirst, sharers).unwrap();
            assert!(w.arcs.len() <= 12, "{req}@{dirst}: {}", w.arcs.len());
        }
    }

    #[test]
    fn render_shape() {
        let w = walk(generated(), "wb", "MESI", 1).unwrap();
        let text = w.render();
        assert!(text.contains("wb @ dirst=MESI"));
        assert!(text.contains("completed"));
        assert!(text.contains("mem"));
    }
}
