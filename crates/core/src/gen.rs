//! Push-button table generation: run the constraint solver over every
//! controller specification and load the results into a central
//! database, exactly the paper's flow ("controller tables are modeled as
//! database tables in a central database; the table entries are
//! automatically generated from a compact set of SQL constraints").

use ccsql_protocol::{ControllerSpec, ProtocolSpec};
use ccsql_relalg::expr::SetContext;
use ccsql_relalg::{Database, GenMode, GenOptions, GenStats, Relation};
use std::collections::HashMap;

/// The generated protocol: all controller tables plus generation
/// statistics, loaded into one [`Database`].
pub struct GeneratedProtocol {
    /// The protocol specification the tables were generated from.
    pub spec: ProtocolSpec,
    /// Central database holding one table per controller (named `D`,
    /// `M`, `N`, `R`, `C`, `IO`, `L`, `CFG`), with the protocol's named
    /// sets (`isrequest`, `isresponse`, `iscompletion`) defined.
    pub db: Database,
    /// Per-controller generation statistics.
    pub stats: HashMap<&'static str, GenStats>,
}

impl GeneratedProtocol {
    /// Generate every controller table with the given solver mode
    /// (compiled constraint evaluation, the default).
    pub fn generate(mode: GenMode) -> ccsql_relalg::Result<GeneratedProtocol> {
        GeneratedProtocol::generate_spec(ProtocolSpec::asura(), mode)
    }

    /// Generate every controller table with explicit [`GenOptions`]
    /// (e.g. the interpreted `--no-compile` oracle path).
    pub fn generate_with(opts: GenOptions) -> ccsql_relalg::Result<GeneratedProtocol> {
        GeneratedProtocol::generate_spec_with(ProtocolSpec::asura(), opts)
    }

    /// Generate a protocol *revision* (e.g. the direct owner-transfer
    /// directory design).
    pub fn generate_variant(
        transfer: ccsql_protocol::directory::OwnerTransfer,
        mode: GenMode,
    ) -> ccsql_relalg::Result<GeneratedProtocol> {
        GeneratedProtocol::generate_spec(ProtocolSpec::asura_with(transfer), mode)
    }

    /// Generate every controller table of `spec`.
    pub fn generate_spec(
        spec: ProtocolSpec,
        mode: GenMode,
    ) -> ccsql_relalg::Result<GeneratedProtocol> {
        GeneratedProtocol::generate_spec_with(spec, mode.into())
    }

    /// Generate every controller table of `spec` with explicit options.
    pub fn generate_spec_with(
        spec: ProtocolSpec,
        opts: GenOptions,
    ) -> ccsql_relalg::Result<GeneratedProtocol> {
        let ctx = ProtocolSpec::eval_context();
        let mut db = Database::new();
        define_protocol_sets(&mut db);
        let mut stats = HashMap::new();
        // Live-progress plumbing for `--heartbeat`: tables done / rows
        // solved so far, published once per controller and only read by
        // the ticker thread.
        let done = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let rows = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let cands = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let _ticker = {
            let (done, rows, cands) = (done.clone(), rows.clone(), cands.clone());
            let total = spec.controllers.len() as u64;
            ccsql_obs::heartbeat::Ticker::start("solve", move || {
                use std::sync::atomic::Ordering::Relaxed;
                vec![
                    ("tables_done", done.load(Relaxed).into()),
                    ("tables_total", total.into()),
                    ("rows", rows.load(Relaxed).into()),
                    ("candidates", cands.load(Relaxed).into()),
                ]
            })
        };
        for c in &spec.controllers {
            let (rel, st) = c.spec.generate_with(opts, &ctx)?;
            done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            rows.fetch_add(rel.len() as u64, std::sync::atomic::Ordering::Relaxed);
            cands.fetch_add(st.candidates, std::sync::atomic::Ordering::Relaxed);
            db.put_table(c.name, rel);
            stats.insert(c.name, st);
        }
        Ok(GeneratedProtocol { spec, db, stats })
    }

    /// Generate with the default (incremental) mode.
    pub fn generate_default() -> ccsql_relalg::Result<GeneratedProtocol> {
        GeneratedProtocol::generate(GenMode::Incremental)
    }

    /// The generated table of controller `name`.
    pub fn table(&self, name: &str) -> ccsql_relalg::Result<&Relation> {
        self.db.table(name)
    }

    /// Controller spec by name.
    pub fn controller(&self, name: &str) -> Option<&ControllerSpec> {
        self.spec.controller(name)
    }

    /// The evaluation context used for generation (named sets).
    pub fn context() -> SetContext {
        ProtocolSpec::eval_context()
    }
}

/// Define the protocol's named sets on a database so invariants written
/// with `isrequest(…)` / `iscompletion(…)` evaluate.
pub fn define_protocol_sets(db: &mut Database) {
    for (name, values) in ccsql_protocol::messages::named_sets() {
        db.define_set(name, values);
    }
    db.define_set(
        "iscompletion",
        ccsql_protocol::directory::COMPLETIONS
            .iter()
            .map(|n| ccsql_relalg::Value::sym(n)),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_eight_tables() {
        let g = GeneratedProtocol::generate_default().unwrap();
        for name in ["D", "M", "N", "R", "C", "IO", "L", "CFG"] {
            let t = g.table(name).unwrap();
            assert!(!t.is_empty(), "{name} empty");
            assert!(g.stats.contains_key(name));
        }
        assert_eq!(g.table("D").unwrap().arity(), 30);
    }

    #[test]
    fn all_eight_tables_identical_compiled_vs_interpreted() {
        let compiled = GeneratedProtocol::generate_default().unwrap();
        let interp =
            GeneratedProtocol::generate_with(GenOptions::interpreted(GenMode::Incremental))
                .unwrap();
        for name in ["D", "M", "N", "R", "C", "IO", "L", "CFG"] {
            let a = compiled.table(name).unwrap();
            let b = interp.table(name).unwrap();
            assert_eq!(a.len(), b.len(), "{name}: row count differs");
            assert!(a.rows().eq(b.rows()), "{name}: rows differ");
            // Same readiness accounting on both paths.
            assert_eq!(
                compiled.stats[name].candidates, interp.stats[name].candidates,
                "{name}: candidate count differs"
            );
        }
    }

    #[test]
    fn database_queries_work_on_generated_tables() {
        let mut g = GeneratedProtocol::generate_default().unwrap();
        let r =
            g.db.query("select distinct inmsg from D where isrequest(inmsg)")
                .unwrap();
        assert_eq!(r.len(), ccsql_protocol::directory::D_REQUESTS.len());
    }
}
