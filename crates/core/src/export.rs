//! Export controller tables to a Murphi-style rule set.
//!
//! The paper compares its SQL approach against model checkers [3, 6]:
//! "to use these tools, the controller tables need to be extensively
//! abstracted to avoid the state explosion problem." This module makes
//! that comparison concrete: any generated controller table can be
//! emitted as a Murphi-style description — one `rule` per row — so the
//! abstraction gap (hundreds of guarded rules over the *unabstracted*
//! state space) is visible, and downstream users can feed the tables to
//! a real model checker if they wish.

use ccsql_protocol::ControllerSpec;
use ccsql_relalg::{Relation, Value};
use std::fmt::Write;

/// Sanitise a protocol symbol into a Murphi identifier.
fn ident(v: &Value) -> String {
    match v {
        Value::Null => "NONE".to_string(),
        other => other
            .to_string()
            .replace(['-', ' '], "_")
            .replace(|c: char| !c.is_ascii_alphanumeric() && c != '_', "_"),
    }
}

/// Emit a Murphi-style module for one controller: enum type per column
/// (from the observed value sets), one state variable per column, and
/// one guarded rule per table row.
pub fn to_murphi(ctrl: &ControllerSpec, table: &Relation) -> String {
    let schema = table.schema();
    let inputs = ctrl.spec.input_names();
    let outputs = ctrl.spec.output_names();
    let mut s = String::new();
    writeln!(
        s,
        "-- Murphi-style export of controller table {}",
        ctrl.name
    )
    .unwrap();
    writeln!(
        s,
        "-- generated from SQL column constraints; {} rules\n",
        table.len()
    )
    .unwrap();

    // Type declarations from the column tables.
    writeln!(s, "type").unwrap();
    for col in &ctrl.spec.columns {
        let vals: Vec<String> = col.values.iter().map(ident).collect();
        writeln!(s, "  t_{} : enum {{ {} }};", col.name, vals.join(", ")).unwrap();
    }
    writeln!(s, "\nvar").unwrap();
    for col in &ctrl.spec.columns {
        writeln!(s, "  {} : t_{};", col.name, col.name).unwrap();
    }
    writeln!(s).unwrap();

    for (i, row) in table.rows().enumerate() {
        let guard: Vec<String> = inputs
            .iter()
            .map(|c| {
                let idx = schema.index_of(*c).unwrap();
                format!("{} = {}", c, ident(&row[idx]))
            })
            .collect();
        writeln!(s, "rule \"{}_{i}\"", ctrl.name).unwrap();
        writeln!(s, "  {}", guard.join(" & ")).unwrap();
        writeln!(s, "==>").unwrap();
        writeln!(s, "begin").unwrap();
        for c in &outputs {
            let idx = schema.index_of(*c).unwrap();
            writeln!(s, "  {} := {};", c, ident(&row[idx])).unwrap();
        }
        writeln!(s, "end;\n").unwrap();
    }
    s
}

/// Emit the invariant suite as Murphi `invariant` stubs (names and the
/// SQL they correspond to, as comments — the translation the paper says
/// is the expensive part).
pub fn invariants_to_murphi() -> String {
    let mut s = String::new();
    writeln!(
        s,
        "-- The ~50 SQL invariants, as Murphi invariant stubs. Translating\n\
         -- each emptiness query into a state predicate over the abstracted\n\
         -- model is exactly the manual effort the SQL approach avoids."
    )
    .unwrap();
    for inv in crate::invariants::all_invariants() {
        writeln!(s, "invariant \"{}\"", inv.name).unwrap();
        writeln!(s, "  -- {}", inv.description).unwrap();
        writeln!(s, "  -- SQL: {}", inv.sql.replace('\n', " ")).unwrap();
        writeln!(s, "  true; -- requires manual abstraction\n").unwrap();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GeneratedProtocol;
    use std::sync::OnceLock;

    fn generated() -> &'static GeneratedProtocol {
        static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
        GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
    }

    #[test]
    fn directory_exports_one_rule_per_row() {
        let g = generated();
        let d = g.table("D").unwrap();
        let text = to_murphi(g.controller("D").unwrap(), d);
        assert_eq!(text.matches("\nrule \"D_").count(), d.len());
        // Hyphenated states sanitised.
        assert!(text.contains("Busy_sd"));
        assert!(!text.contains("Busy-sd"));
        // NULL becomes NONE.
        assert!(text.contains("NONE"));
        // Every column gets a type.
        assert!(text.contains("t_inmsg : enum"));
        assert!(text.contains("t_cmpl : enum"));
    }

    #[test]
    fn memory_export_is_small() {
        let g = generated();
        let m = g.table("M").unwrap();
        let text = to_murphi(g.controller("M").unwrap(), m);
        assert_eq!(text.matches("\nrule \"M_").count(), 7);
        assert!(text.contains("inmsg = wb"));
        assert!(text.contains("outmsg := compl;"));
    }

    #[test]
    fn invariant_stubs_cover_the_suite() {
        let text = invariants_to_murphi();
        let n = crate::invariants::all_invariants().len();
        assert_eq!(text.matches("invariant \"").count(), n);
        assert!(text.contains("D-retry-on-busy"));
    }
}
