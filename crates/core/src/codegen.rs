//! Code generation from implementation tables ("Code is automatically
//! generated from these tables using SQL report generation").
//!
//! Two emitters are provided: a Verilog-style `case` block per
//! implementation table (what the hardware team consumes) and a Rust
//! `match` (what the table-driven simulator of `ccsql-sim` conceptually
//! executes).

use ccsql_relalg::{Relation, Value};
use std::collections::BTreeMap;
use std::fmt::Write;

fn ident(v: Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        other => other.to_string().replace('-', "_"),
    }
}

/// Emit a Verilog-style combinational block for `table`, treating the
/// first `n_inputs` columns as the case selector and the rest as driven
/// outputs.
pub fn verilog_case(name: &str, table: &Relation, n_inputs: usize) -> String {
    let cols = table.schema().columns();
    let mut s = String::new();
    writeln!(s, "// generated from implementation table {name}").unwrap();
    writeln!(s, "module {name} (").unwrap();
    for (i, c) in cols.iter().enumerate() {
        let dir = if i < n_inputs { "input" } else { "output reg" };
        let sep = if i + 1 == cols.len() { "" } else { "," };
        writeln!(s, "    {dir} [7:0] {}{sep}", ident(Value::Sym(*c))).unwrap();
    }
    writeln!(s, ");").unwrap();
    writeln!(s, "always @* begin").unwrap();
    writeln!(
        s,
        "    casez ({{{}}})",
        cols[..n_inputs]
            .iter()
            .map(|c| ident(Value::Sym(*c)))
            .collect::<Vec<_>>()
            .join(", ")
    )
    .unwrap();
    for r in table.rows() {
        let sel: Vec<String> = r[..n_inputs]
            .iter()
            .map(|v| format!("`{}", ident(*v)))
            .collect();
        let mut assigns = String::new();
        for (c, v) in cols[n_inputs..].iter().zip(&r[n_inputs..]) {
            write!(assigns, "{} = `{}; ", ident(Value::Sym(*c)), ident(*v)).unwrap();
        }
        writeln!(s, "        {{{}}}: begin {assigns}end", sel.join(", ")).unwrap();
    }
    writeln!(s, "        default: ; // illegal input combination").unwrap();
    writeln!(s, "    endcase").unwrap();
    writeln!(s, "end").unwrap();
    writeln!(s, "endmodule").unwrap();
    s
}

/// Emit a Rust `match` function for `table` (selector = first
/// `n_inputs` columns as `&str`s, outputs returned as a tuple of
/// `Option<&str>`).
pub fn rust_match(name: &str, table: &Relation, n_inputs: usize) -> String {
    let cols = table.schema().columns();
    let mut s = String::new();
    writeln!(s, "/// Generated from implementation table {name}.").unwrap();
    let args: Vec<String> = cols[..n_inputs]
        .iter()
        .map(|c| format!("{}: &str", ident(Value::Sym(*c)).to_lowercase()))
        .collect();
    let n_out = cols.len() - n_inputs;
    writeln!(
        s,
        "pub fn {}({}) -> Option<({})> {{",
        name.to_lowercase(),
        args.join(", "),
        vec!["Option<&'static str>"; n_out].join(", ")
    )
    .unwrap();
    writeln!(
        s,
        "    match ({}) {{",
        cols[..n_inputs]
            .iter()
            .map(|c| ident(Value::Sym(*c)).to_lowercase())
            .collect::<Vec<_>>()
            .join(", ")
    )
    .unwrap();
    for r in table.rows() {
        let pat: Vec<String> = r[..n_inputs]
            .iter()
            .map(|v| format!("{:?}", v.to_string()))
            .collect();
        let outs: Vec<String> = r[n_inputs..]
            .iter()
            .map(|v| match v {
                Value::Null => "None".to_string(),
                other => format!("Some({:?})", other.to_string()),
            })
            .collect();
        writeln!(
            s,
            "        ({}) => Some(({})),",
            pat.join(", "),
            outs.join(", ")
        )
        .unwrap();
    }
    writeln!(s, "        _ => None,").unwrap();
    writeln!(s, "    }}").unwrap();
    writeln!(s, "}}").unwrap();
    s
}

/// Summary statistics of one emitted artifact (for reports).
pub fn stats(source: &str) -> BTreeMap<&'static str, usize> {
    let mut m = BTreeMap::new();
    m.insert("lines", source.lines().count());
    m.insert("bytes", source.len());
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Relation {
        let mut r = Relation::with_columns(["inmsg", "dirst", "locmsg"]).unwrap();
        r.push_row(&[Value::sym("readex"), Value::sym("SI"), Value::sym("retry")])
            .unwrap();
        r.push_row(&[Value::sym("data"), Value::sym("Busy-d"), Value::Null])
            .unwrap();
        r
    }

    #[test]
    fn verilog_has_case_arms_per_row() {
        let v = verilog_case("Request_locmsg", &sample(), 2);
        assert!(v.contains("module Request_locmsg"));
        assert!(v.contains("casez"));
        assert!(v.contains("`readex"));
        // Hyphenated states become identifiers.
        assert!(v.contains("`Busy_d"));
        assert!(v.contains("default:"));
        assert_eq!(v.matches(": begin").count(), 2);
    }

    #[test]
    fn rust_match_compilable_shape() {
        let r = rust_match("Request_locmsg", &sample(), 2);
        assert!(r.contains("pub fn request_locmsg(inmsg: &str, dirst: &str)"));
        assert!(r.contains("(\"readex\", \"SI\") => Some((Some(\"retry\")))"));
        assert!(r.contains("(\"data\", \"Busy-d\") => Some((None))"));
        assert!(r.contains("_ => None,"));
    }

    #[test]
    fn stats_counts() {
        let v = verilog_case("t", &sample(), 2);
        let st = stats(&v);
        assert!(st["lines"] > 5);
        assert!(st["bytes"] > 50);
    }
}
