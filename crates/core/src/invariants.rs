//! The protocol invariant suite (section 4.3).
//!
//! Every invariant is an SQL query over the generated controller tables
//! that must return the **empty set**; a non-empty result is a violation
//! and the offending rows are the witness. "All of the protocol
//! invariants (around 50) are checked … within 5 minutes" — here the
//! whole suite runs in milliseconds, but the *shape* (invariant checking
//! ≪ table generation) is reproduced by the benches.
//!
//! The three invariants quoted in the paper appear verbatim-adapted:
//! directory/presence-vector consistency, directory vs busy-directory
//! mutual exclusion, and request serialisation (retry on busy +
//! dealloc only on completion). The rest of the suite covers the same
//! table properties for every controller, plus cross-controller message
//! compatibility.

use ccsql_relalg::{Database, Relation};

/// One declarative invariant.
pub struct Invariant {
    /// Short identifier, e.g. `"D-dirpv-consistency"`.
    pub name: &'static str,
    /// Human description.
    pub description: &'static str,
    /// The SQL whose result must be empty.
    pub sql: String,
}

impl Invariant {
    fn new(name: &'static str, description: &'static str, sql: impl Into<String>) -> Invariant {
        Invariant {
            name,
            description,
            sql: sql.into(),
        }
    }
}

/// Result of checking one invariant.
pub struct InvariantResult {
    /// The invariant's name.
    pub name: &'static str,
    /// The violating rows (empty ⇒ the invariant holds).
    pub witnesses: Relation,
}

impl InvariantResult {
    /// Did the invariant hold?
    pub fn holds(&self) -> bool {
        self.witnesses.is_empty()
    }
}

/// The full invariant suite over the 8 controller tables.
#[allow(clippy::vec_init_then_push)]
pub fn all_invariants() -> Vec<Invariant> {
    let mut inv = Vec::new();

    // ===================== Directory controller D =====================
    // (1) The paper's first invariant: directory state / presence vector
    // consistency. Split into its three clauses (the conjunction in the
    // paper's SQL is a typo — each clause must independently be empty).
    inv.push(Invariant::new(
        "D-pv-mesi",
        "MESI directory entries have exactly one owner",
        r#"select dirst, dirpv from D where dirst = "MESI" and not dirpv = "one""#,
    ));
    inv.push(Invariant::new(
        "D-pv-si",
        "SI directory entries have one or more sharers",
        r#"select dirst, dirpv from D where dirst = "SI" and not dirpv = "one" and not dirpv = "gone""#,
    ));
    inv.push(Invariant::new(
        "D-pv-i",
        "invalid directory entries have no sharers",
        r#"select dirst, dirpv from D where dirst = "I" and not dirpv = "zero""#,
    ));
    // (2) The paper's mutual-exclusion invariant, verbatim.
    inv.push(Invariant::new(
        "D-dir-bdir-exclusive",
        "a line is in the busy directory or the directory but not both",
        r#"select dirst, bdirst from D where not dirst = "I" and not bdirst = "I""#,
    ));
    // (3) Request serialisation, part 1: retry whenever the line is busy.
    inv.push(Invariant::new(
        "D-retry-on-busy",
        "a request is issued a retry response whenever a line is in the busy directory",
        r#"select inmsg, bdirst, locmsg from D where isrequest(inmsg) and not bdirst = "I" and not locmsg = "retry""#,
    ));
    // (3) part 2: a busy entry is deallocated only when the transaction
    // completes (D receives or sends a completion response).
    inv.push(Invariant::new(
        "D-dealloc-on-compl",
        "a busy directory entry is de-allocated only when a transaction completes",
        r#"select inmsg, bdirst, nxtbdirst, locmsg from D where not iscompletion(inmsg) and not iscompletion(locmsg) and not bdirst = "I" and nxtbdirst = "I""#,
    ));
    // Lookup-result consistency.
    inv.push(Invariant::new(
        "D-dirlk-consistent",
        "directory lookup hits iff the entry exists",
        r#"select dirst, dirlk from D where (dirst = "I" and dirlk = "hit") or (not dirst = "I" and dirlk = "miss")"#,
    ));
    inv.push(Invariant::new(
        "D-bdirlk-consistent",
        "busy directory lookup hits iff the entry exists",
        r#"select bdirst, bdirlk from D where (bdirst = "I" and bdirlk = "hit") or (not bdirst = "I" and bdirlk = "miss")"#,
    ));
    // Retry purity: a retried request has no side effects.
    inv.push(Invariant::new(
        "D-retry-pure",
        "retried requests have no side effects (no snoop, no memory op, no structure update, no completion)",
        r#"select locmsg, remmsg, memmsg, dirupd, bdirupd, cmpl from D where locmsg = "retry" and (not remmsg = NULL or not memmsg = NULL or not dirupd = NULL or not bdirupd = NULL or cmpl = "yes")"#,
    ));
    // Message-column triple consistency for all three output messages.
    for (m, src, dest, res) in [
        ("locmsg", "locmsgsrc", "locmsgdest", "locmsgres"),
        ("remmsg", "remmsgsrc", "remmsgdest", "remmsgres"),
        ("memmsg", "memmsgsrc", "memmsgdest", "memmsgres"),
    ] {
        inv.push(Invariant::new(
            match m {
                "locmsg" => "D-locmsg-triple",
                "remmsg" => "D-remmsg-triple",
                _ => "D-memmsg-triple",
            },
            "a message column and its src/dest/res columns are NULL together",
            format!(
                "select {m}, {src}, {dest}, {res} from D where \
                 ({m} = NULL and (not {src} = NULL or not {dest} = NULL or not {res} = NULL)) \
                 or (not {m} = NULL and ({src} = NULL or {dest} = NULL or {res} = NULL))"
            ),
        ));
    }
    // Structure-update semantics.
    inv.push(Invariant::new(
        "D-bdir-alloc",
        "busy allocation starts from an idle busy entry and names a busy state",
        r#"select bdirupd, bdirst, nxtbdirst from D where bdirupd = "alloc" and (not bdirst = "I" or nxtbdirst = "I" or nxtbdirst = NULL)"#,
    ));
    inv.push(Invariant::new(
        "D-bdir-dealloc",
        "busy deallocation ends in the idle busy state",
        r#"select bdirupd, nxtbdirst from D where bdirupd = "dealloc" and not nxtbdirst = "I""#,
    ));
    inv.push(Invariant::new(
        "D-dir-dealloc",
        "directory deallocation ends in the invalid directory state",
        r#"select dirupd, nxtdirst from D where dirupd = "dealloc" and not nxtdirst = "I""#,
    ));
    inv.push(Invariant::new(
        "D-dir-alloc",
        "directory allocation installs a real state",
        r#"select dirupd, nxtdirst from D where dirupd = "alloc" and (nxtdirst = "I" or nxtdirst = NULL)"#,
    ));
    inv.push(Invariant::new(
        "D-nxtbdirst-needs-upd",
        "busy state changes are accompanied by a busy directory update",
        r#"select nxtbdirst, bdirupd from D where not nxtbdirst = NULL and bdirupd = NULL"#,
    ));
    inv.push(Invariant::new(
        "D-nxtdirst-needs-upd",
        "directory state changes are accompanied by a directory update",
        r#"select nxtdirst, dirupd from D where not nxtdirst = NULL and dirupd = NULL"#,
    ));
    // Completion semantics.
    inv.push(Invariant::new(
        "D-cmpl-frees-busy",
        "a completing transition leaves no busy entry behind",
        r#"select cmpl, bdirst, nxtbdirst from D where cmpl = "yes" and not bdirst = "I" and not nxtbdirst = "I""#,
    ));
    inv.push(Invariant::new(
        "D-cmpl-response",
        "a completing transition answers the requester or consumes a completion",
        r#"select cmpl, locmsg, inmsg from D where cmpl = "yes" and locmsg = NULL and not iscompletion(inmsg)"#,
    ));
    // Input-side sanity.
    inv.push(Invariant::new(
        "D-requests-from-local",
        "requests reach the directory from the local node",
        r#"select inmsg, inmsgsrc from D where isrequest(inmsg) and not inmsgsrc = "local""#,
    ));
    inv.push(Invariant::new(
        "D-responses-not-local",
        "responses reach the directory from home or remote",
        r#"select inmsg, inmsgsrc from D where isresponse(inmsg) and inmsgsrc = "local""#,
    ));
    inv.push(Invariant::new(
        "D-requests-on-reqq",
        "requests arrive on the request queue",
        r#"select inmsg, inmsgres from D where isrequest(inmsg) and not inmsgres = "reqq""#,
    ));
    inv.push(Invariant::new(
        "D-responses-on-rspq",
        "responses arrive on the response queue",
        r#"select inmsg, inmsgres from D where isresponse(inmsg) and not inmsgres = "rspq""#,
    ));
    inv.push(Invariant::new(
        "D-responses-never-retried",
        "responses are never answered with retry",
        r#"select inmsg, locmsg from D where isresponse(inmsg) and locmsg = "retry""#,
    ));
    inv.push(Invariant::new(
        "D-responses-need-busy",
        "responses are consumed only while a transaction is in flight",
        r#"select inmsg, bdirst from D where isresponse(inmsg) and bdirst = "I""#,
    ));
    inv.push(Invariant::new(
        "D-snoop-only-on-request",
        "snoops are generated only while processing requests",
        r#"select inmsg, remmsg from D where remmsg in ("sinv", "sread", "sflush", "srdex") and not isrequest(inmsg) and not inmsg = "idone""#,
    ));
    inv.push(Invariant::new(
        "D-outputs-are-messages",
        "the directory's local responses are catalogued responses",
        r#"select locmsg from D where not locmsg = NULL and not isresponse(locmsg)"#,
    ));
    inv.push(Invariant::new(
        "D-remmsg-are-requests",
        "the directory's snoops are catalogued requests",
        r#"select remmsg from D where not remmsg = NULL and not isrequest(remmsg)"#,
    ));
    inv.push(Invariant::new(
        "D-busy-pv-null-only-retry",
        "the busy presence vector is a don't-care only on retried requests",
        r#"select inmsg, bdirpv, locmsg from D where bdirpv = NULL and not locmsg = "retry""#,
    ));

    // ====================== Memory controller M ======================
    inv.push(Invariant::new(
        "M-mread-data",
        "memory answers mread with data",
        r#"select inmsg, outmsg from M where inmsg = "mread" and not outmsg = "data""#,
    ));
    inv.push(Invariant::new(
        "M-wb-compl",
        "memory answers a forwarded write back with compl (Figure 4, row R1)",
        r#"select inmsg, outmsg from M where inmsg = "wb" and not outmsg = "compl""#,
    ));
    inv.push(Invariant::new(
        "M-mwrite-mcompl",
        "memory answers mwrite with mcompl",
        r#"select inmsg, outmsg from M where inmsg = "mwrite" and not outmsg = "mcompl""#,
    ));
    inv.push(Invariant::new(
        "M-responses-are-responses",
        "memory outputs are catalogued responses",
        r#"select outmsg from M where not outmsg = NULL and not isresponse(outmsg)"#,
    ));
    inv.push(Invariant::new(
        "M-home-only",
        "memory talks only to home-side controllers",
        r#"select outmsgdest from M where not outmsgdest = NULL and not outmsgdest = "home""#,
    ));

    // ======================== Node controller N ======================
    inv.push(Invariant::new(
        "N-requests-out",
        "node outputs are catalogued requests to home",
        r#"select outmsg, outmsgdest from N where not outmsg = NULL and (not isrequest(outmsg) or not outmsgdest = "home")"#,
    ));
    inv.push(Invariant::new(
        "N-wait-has-request",
        "a stalled processor op has sent a request",
        r#"select inmsg, cpures, outmsg from N where cpures = "wait" and outmsg = NULL and inmsg in (cpu_read, cpu_write, cpu_evict, cpu_flush, cpu_ioread, cpu_iowrite)"#,
    ));
    inv.push(Invariant::new(
        "N-retry-redo",
        "a retry response forces the processor to re-issue",
        r#"select inmsg, cpures from N where inmsg = "retry" and not cpures = "redo""#,
    ));
    inv.push(Invariant::new(
        "N-done-clears-pending",
        "a completed miss clears the pending state",
        r#"select inmsg, nxtpendst from N where (inmsg in (edata, compl, wbcompl, iodata, iocompl, ack) or (inmsg = data and pendst = "p_read")) and not nxtpendst = "none""#,
    ));
    inv.push(Invariant::new(
        "N-no-request-while-pending",
        "at most one outstanding transaction per node (single pending slot)",
        r#"select pendst, outmsg from N where not pendst = "none" and not outmsg = NULL"#,
    ));

    // ========================= RAC controller R ======================
    inv.push(Invariant::new(
        "R-snoops-answered",
        "every snoop is answered",
        r#"select inmsg, rspmsg from R where rspmsg = NULL"#,
    ));
    inv.push(Invariant::new(
        "R-sinv-invalidates",
        "an invalidation leaves the line invalid",
        r#"select inmsg, nxtlinest from R where inmsg = "sinv" and not nxtlinest = "I""#,
    ));
    inv.push(Invariant::new(
        "R-sinv-idone",
        "invalidations are acknowledged with idone (Figure 4)",
        r#"select inmsg, rspmsg from R where inmsg = "sinv" and not rspmsg = "idone""#,
    ));
    inv.push(Invariant::new(
        "R-sflush-cleans",
        "a flush snoop leaves the line invalid",
        r#"select inmsg, nxtlinest from R where inmsg = "sflush" and not nxtlinest = "I""#,
    ));
    inv.push(Invariant::new(
        "R-dirty-data-travels",
        "snooping a modified line yields data or a flush",
        r#"select inmsg, linest, rspmsg from R where linest = "M" and not rspmsg in (sdata, fdone, xferdone, idone)"#,
    ));
    inv.push(Invariant::new(
        "R-responses-to-home",
        "snoop responses go to the home directory",
        r#"select rspmsgdest from R where not rspmsgdest = NULL and not rspmsgdest = "home""#,
    ));

    // ======================== Cache controller C =====================
    inv.push(Invariant::new(
        "C-businv-invalidates",
        "a bus invalidation leaves the cache line invalid",
        r#"select op, nxtst from C where op = "bus_inv" and not nxtst = "I""#,
    ));
    inv.push(Invariant::new(
        "C-m-flushes",
        "a modified line hit by a foreign exclusive op flushes",
        r#"select op, st, action from C where st = "M" and op in (bus_rdx, bus_inv) and not action = "flush""#,
    ));
    inv.push(Invariant::new(
        "C-no-m-from-bus",
        "bus operations never install modified state",
        r#"select op, nxtst from C where op in (bus_rd, bus_rdx, bus_inv) and nxtst = "M""#,
    ));
    inv.push(Invariant::new(
        "C-write-gets-m",
        "a processor write ends in modified state",
        r#"select op, st, nxtst from C where op = "pwr" and not st = "M" and not nxtst = "M""#,
    ));

    // ========================= IO controller =========================
    inv.push(Invariant::new(
        "IO-owned-retries",
        "I/O operations against an owned device are retried",
        r#"select inmsg, iost, outmsg from IO where iost = "owned" and inmsg in (ioread, iowrite, iordex) and not outmsg = "retry""#,
    ));
    inv.push(Invariant::new(
        "IO-always-answers",
        "every I/O operation is answered",
        r#"select inmsg, outmsg from IO where outmsg = NULL"#,
    ));

    // ========================= Link controller =======================
    inv.push(Invariant::new(
        "L-no-forward-without-credit",
        "a flit is forwarded only when a downstream credit exists",
        r#"select bufst, credit, action from L where credit = "none" and bufst = "held" and action = "forward""#,
    ));
    inv.push(Invariant::new(
        "L-credit-conservation",
        "forwarding consumes exactly one credit",
        r#"select action, credupd from L where action = "forward" and not credupd = "dec""#,
    ));

    // ==================== Cross-controller coupling ===================
    // "The invariants involving other controllers and interactions of
    // controllers are similarly easily written in SQL."
    inv.push(Invariant::new(
        "X-snoops-consumable",
        "every snoop the directory sends is handled by the RAC",
        r#"select distinct remmsg from D where not remmsg = NULL and not remmsg in (sinv, sread, sflush, srdex, sfetch)"#,
    ));
    inv.push(Invariant::new(
        "X-memops-consumable",
        "every memory operation the directory sends is handled by memory",
        r#"select distinct memmsg from D where not memmsg = NULL and not memmsg in (mread, mwrite, wb, ioread, iowrite, mupd, mflush)"#,
    ));
    inv.push(Invariant::new(
        "X-locmsg-consumable",
        "every response the directory sends is consumed by the node controller",
        r#"select distinct locmsg from D where not locmsg = NULL and not locmsg in (data, edata, compl, retry, wbcompl, iodata, iocompl, ack, swapdata)"#,
    ));
    inv.push(Invariant::new(
        "X-rac-responses-consumable",
        "every RAC response is consumed by the directory",
        r#"select distinct rspmsg from R where not rspmsg = NULL and not rspmsg in (idone, sdata, fdone, sdone, xferdone)"#,
    ));
    inv.push(Invariant::new(
        "X-mem-responses-consumable",
        "every memory response is consumed by the directory",
        r#"select distinct outmsg from M where not outmsg = NULL and not outmsg in (data, mcompl, compl, iodata, iocompl, ack)"#,
    ));
    inv.push(Invariant::new(
        "X-node-requests-consumable",
        "every node request is handled by the directory",
        r#"select distinct outmsg from N where not outmsg = NULL and not outmsg in (read, readex, upgrade, wb, wbinv, flush, fetch, swap, replace, ioread, iowrite)"#,
    ));

    inv
}

/// Check every invariant against the database; returns one result per
/// invariant, in suite order.
pub fn check_all(db: &mut Database) -> ccsql_relalg::Result<Vec<InvariantResult>> {
    let invariants = all_invariants();
    let mut out = Vec::with_capacity(invariants.len());
    for inv in &invariants {
        let witnesses = db.check_empty(&inv.sql)?;
        out.push(InvariantResult {
            name: inv.name,
            witnesses,
        });
    }
    Ok(out)
}

/// Names of invariants that failed.
pub fn failures(results: &[InvariantResult]) -> Vec<&'static str> {
    results
        .iter()
        .filter(|r| !r.holds())
        .map(|r| r.name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GeneratedProtocol;

    #[test]
    fn about_fifty_invariants() {
        // "All of the protocol invariants (around 50)…"
        let n = all_invariants().len();
        assert!((50..=60).contains(&n), "suite has {n} invariants");
    }

    #[test]
    fn debugged_tables_satisfy_all_invariants() {
        let mut g = GeneratedProtocol::generate_default().unwrap();
        let results = check_all(&mut g.db).unwrap();
        let bad = failures(&results);
        assert!(bad.is_empty(), "violated: {bad:?}");
    }

    #[test]
    fn a_seeded_bug_is_caught_with_witnesses() {
        use ccsql_relalg::Value;
        let mut g = GeneratedProtocol::generate_default().unwrap();
        // Seed the classic bug: a MESI entry with more than one owner.
        let d = g.db.table("D").unwrap();
        let schema = d.schema();
        let mut row: Vec<Value> = d.row(0).to_vec();
        row[schema.index_of_str("dirst").unwrap()] = Value::sym("MESI");
        row[schema.index_of_str("dirpv").unwrap()] = Value::sym("gone");
        let mut d2 = d.clone();
        d2.push_row(&row).unwrap();
        g.db.put_table("D", d2);

        let results = check_all(&mut g.db).unwrap();
        let bad = failures(&results);
        assert!(bad.contains(&"D-pv-mesi"), "got {bad:?}");
        let r = results.iter().find(|r| r.name == "D-pv-mesi").unwrap();
        assert_eq!(r.witnesses.len(), 1);
        assert_eq!(r.witnesses.row(0)[1], Value::sym("gone"));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all_invariants().iter().map(|i| i.name).collect();
        names.sort();
        let n = names.len();
        names.dedup();
        assert_eq!(n, names.len());
    }
}
