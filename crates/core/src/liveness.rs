//! Static liveness analysis of the busy-directory state machine.
//!
//! The invariant suite (section 4.3) checks *per-row* properties; this
//! module checks *path* properties of the directory table that the
//! paper's designers would review by hand: every busy state that a
//! transaction can enter must be able to make progress and eventually
//! deallocate — a transaction that parks in a busy state with no exit
//! is a protocol hang even if every individual row is well-formed.
//!
//! The analysis builds the busy-state transition graph from the rows of
//! the generated `D`:
//!
//! * **alloc edges** `I → s` (rows with `bdirupd = alloc`),
//! * **transition edges** `s → s'` (rows with `bdirupd = write`),
//! * **dealloc edges** `s → I` (rows with `bdirupd = dealloc`),
//!
//! and checks reachability in both directions.

use ccsql_relalg::{Relation, Sym, Value};
use std::collections::{HashMap, HashSet, VecDeque};

/// One edge of the busy-state graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BusyEdge {
    /// Source busy state (`I` for allocations).
    pub from: Sym,
    /// Destination busy state (`I` for deallocations).
    pub to: Sym,
    /// The incoming message driving the transition.
    pub on: Sym,
    /// Row index in `D` (witness).
    pub row: usize,
}

/// The busy-state transition graph plus analysis results.
pub struct BusyGraph {
    /// All edges.
    pub edges: Vec<BusyEdge>,
    /// Busy states with at least one row (exercised states).
    pub used: HashSet<Sym>,
    /// Busy states declared in the column table but never entered
    /// (informational — spare encodings).
    pub declared_unused: Vec<Sym>,
    /// Exercised states not reachable from `I` via alloc+transitions.
    pub unreachable: Vec<Sym>,
    /// Reachable states from which no dealloc is reachable (hangs).
    pub stuck: Vec<Sym>,
    /// Reachable states with no outgoing edge at all (dead ends).
    pub dead_ends: Vec<Sym>,
}

impl BusyGraph {
    /// Build and analyse the busy-state graph of a directory table.
    /// `declared` is the full busy-state column table (e.g.
    /// `ccsql_protocol::states::busy_states()`).
    pub fn build(d: &Relation, declared: &[String]) -> ccsql_relalg::Result<BusyGraph> {
        let schema = d.schema();
        let col = |n: &str| {
            schema
                .index_of_str(n)
                .ok_or_else(|| ccsql_relalg::Error::NoSuchColumn(n.into(), "liveness".into()))
        };
        let inmsg = col("inmsg")?;
        let bdirst = col("bdirst")?;
        let nxtbdirst = col("nxtbdirst")?;
        let bdirupd = col("bdirupd")?;
        let i_sym = Sym::intern("I");

        let mut edges = Vec::new();
        let mut entered: HashSet<Sym> = HashSet::new();
        let mut occupied: HashSet<Sym> = HashSet::new();
        for (ri, r) in d.rows().enumerate() {
            let from = r[bdirst].as_sym().unwrap_or(i_sym);
            if from != i_sym {
                occupied.insert(from);
            }
            let upd = match r[bdirupd] {
                Value::Sym(s) => s,
                _ => continue,
            };
            let on = r[inmsg].as_sym().expect("inmsg is total");
            let to = match upd.as_str() {
                "alloc" => {
                    let to = r[nxtbdirst].as_sym().expect("alloc names a state");
                    entered.insert(to);
                    to
                }
                "write" => {
                    let to = r[nxtbdirst].as_sym().unwrap_or(from);
                    if to != i_sym {
                        entered.insert(to);
                    }
                    to
                }
                "dealloc" => i_sym,
                _ => continue,
            };
            edges.push(BusyEdge {
                from,
                to,
                on,
                row: ri,
            });
        }

        // Forward reachability from I.
        let mut fwd: HashSet<Sym> = HashSet::new();
        let mut queue: VecDeque<Sym> = VecDeque::new();
        fwd.insert(i_sym);
        queue.push_back(i_sym);
        let mut adj: HashMap<Sym, Vec<Sym>> = HashMap::new();
        let mut radj: HashMap<Sym, Vec<Sym>> = HashMap::new();
        for e in &edges {
            adj.entry(e.from).or_default().push(e.to);
            radj.entry(e.to).or_default().push(e.from);
        }
        while let Some(s) = queue.pop_front() {
            for &t in adj.get(&s).into_iter().flatten() {
                if fwd.insert(t) {
                    queue.push_back(t);
                }
            }
        }
        // Backward reachability from I (can deallocate).
        let mut bwd: HashSet<Sym> = HashSet::new();
        bwd.insert(i_sym);
        queue.push_back(i_sym);
        while let Some(s) = queue.pop_front() {
            for &t in radj.get(&s).into_iter().flatten() {
                if bwd.insert(t) {
                    queue.push_back(t);
                }
            }
        }

        // "Used" = actually entered by some alloc/write, or the source
        // of a real transition (not counting the defensive retry rows,
        // which occupy a state without transitioning it). States that
        // only appear as `bdirst` inputs of retry rows are spare
        // encodings.
        let _ = occupied;
        let active: HashSet<Sym> = edges
            .iter()
            .map(|e| e.from)
            .filter(|s| *s != i_sym)
            .collect();
        let used: HashSet<Sym> = entered.union(&active).copied().collect();
        let sorted = |mut v: Vec<Sym>| -> Vec<Sym> {
            v.sort();
            v
        };
        let declared_unused = sorted(
            declared
                .iter()
                .map(|s| Sym::intern(s))
                .filter(|s| *s != i_sym && !used.contains(s))
                .collect(),
        );
        let unreachable = sorted(used.iter().copied().filter(|s| !fwd.contains(s)).collect());
        let stuck = sorted(
            used.iter()
                .copied()
                .filter(|s| fwd.contains(s) && !bwd.contains(s))
                .collect(),
        );
        let dead_ends = sorted(
            used.iter()
                .copied()
                .filter(|s| fwd.contains(s) && adj.get(s).is_none_or(|a| a.is_empty()))
                .collect(),
        );
        Ok(BusyGraph {
            edges,
            used,
            declared_unused,
            unreachable,
            stuck,
            dead_ends,
        })
    }

    /// Does the table pass all liveness checks?
    pub fn ok(&self) -> bool {
        self.unreachable.is_empty() && self.stuck.is_empty() && self.dead_ends.is_empty()
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        writeln!(
            s,
            "busy-state graph: {} edges over {} exercised states ({} declared-but-unused encodings)",
            self.edges.len(),
            self.used.len(),
            self.declared_unused.len()
        )
        .unwrap();
        let list = |v: &[Sym]| {
            v.iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        };
        if self.ok() {
            writeln!(
                s,
                "every exercised busy state is reachable from I and can deallocate — no hangs"
            )
            .unwrap();
        } else {
            if !self.unreachable.is_empty() {
                writeln!(s, "UNREACHABLE: {}", list(&self.unreachable)).unwrap();
            }
            if !self.stuck.is_empty() {
                writeln!(s, "STUCK (no path to dealloc): {}", list(&self.stuck)).unwrap();
            }
            if !self.dead_ends.is_empty() {
                writeln!(s, "DEAD ENDS (no outgoing row): {}", list(&self.dead_ends)).unwrap();
            }
        }
        s
    }

    /// Transition edges out of one state (for per-family summaries).
    pub fn edges_from(&self, state: &str) -> Vec<&BusyEdge> {
        let s = Sym::intern(state);
        self.edges.iter().filter(|e| e.from == s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GeneratedProtocol;
    use ccsql_protocol::states;
    use std::sync::OnceLock;

    fn generated() -> &'static GeneratedProtocol {
        static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
        GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
    }

    #[test]
    fn debugged_d_is_live() {
        let g = generated();
        let graph = BusyGraph::build(g.table("D").unwrap(), &states::busy_states()).unwrap();
        assert!(graph.ok(), "{}", graph.render());
        // The readex family path of Figure 2 exists.
        let from_sd: Vec<String> = graph
            .edges_from("Busy-sd")
            .iter()
            .map(|e| format!("{}→{} on {}", e.from, e.to, e.on))
            .collect();
        assert!(
            from_sd.iter().any(|e| e.contains("Busy-s on data")),
            "{from_sd:?}"
        );
        assert!(
            from_sd.iter().any(|e| e.contains("Busy-d on idone")),
            "{from_sd:?}"
        );
    }

    #[test]
    fn declared_unused_states_are_the_spare_encodings() {
        let g = generated();
        let graph = BusyGraph::build(g.table("D").unwrap(), &states::busy_states()).unwrap();
        // 17 of the 40 encodings are entered by the transaction
        // families; the other 23 are spare encodings that only carry
        // the defensive retry-interleaving rows.
        assert_eq!(graph.used.len(), 17, "{:?}", graph.used);
        assert_eq!(
            graph.declared_unused.len(),
            23,
            "{:?}",
            graph.declared_unused
        );
    }

    #[test]
    fn a_stuck_state_is_detected() {
        use ccsql_relalg::Relation;
        // Hand-built mini table: alloc into Busy-x, transition into
        // Busy-trap with no dealloc.
        let mut d = Relation::with_columns(["inmsg", "bdirst", "nxtbdirst", "bdirupd"]).unwrap();
        let v = Value::sym;
        d.push_row(&[v("req"), v("I"), v("Busy-x"), v("alloc")])
            .unwrap();
        d.push_row(&[v("rsp"), v("Busy-x"), v("Busy-trap"), v("write")])
            .unwrap();
        // Busy-trap has a self-transition but never deallocs.
        d.push_row(&[v("tick"), v("Busy-trap"), Value::Null, v("write")])
            .unwrap();
        let graph = BusyGraph::build(
            &d,
            &[
                "I".into(),
                "Busy-x".into(),
                "Busy-trap".into(),
                "Busy-free".into(),
            ],
        )
        .unwrap();
        assert!(!graph.ok());
        let stuck: Vec<&str> = graph.stuck.iter().map(|s| s.as_str()).collect();
        assert_eq!(stuck, ["Busy-trap", "Busy-x"]);
        assert_eq!(graph.declared_unused.len(), 1);
        assert!(graph.render().contains("STUCK"));
    }

    #[test]
    fn an_unreachable_state_is_detected() {
        use ccsql_relalg::Relation;
        let mut d = Relation::with_columns(["inmsg", "bdirst", "nxtbdirst", "bdirupd"]).unwrap();
        let v = Value::sym;
        // Busy-orphan has rows but nothing allocates it.
        d.push_row(&[v("rsp"), v("Busy-orphan"), v("I"), v("dealloc")])
            .unwrap();
        let graph = BusyGraph::build(&d, &["I".into(), "Busy-orphan".into()]).unwrap();
        assert!(!graph.ok());
        assert_eq!(graph.unreachable.len(), 1);
        assert!(graph.render().contains("UNREACHABLE"));
    }
}
