//! Channel dependency tables (section 4.1).
//!
//! From each controller table and a virtual-channel assignment `V`, an
//! *individual controller dependency table* is derived: one row
//! `(m1, s1, d1, vc1, m2, s2, d2, vc2)` per (input assignment, output
//! assignment) pair of a controller transition. These tables are then
//! composed pairwise — an output assignment of one row matching the
//! input assignment of another infers the transitive dependency — under
//! three progressively relaxed matching regimes:
//!
//! 1. **exact match** (`m, s, d, v` all equal),
//! 2. **quad placement**: the five relations between the local, home and
//!    remote quads merge roles that share a quad (and hence share
//!    channels) before matching,
//! 3. **message-ignoring**: transaction interleavings couple channels
//!    regardless of the specific messages, so only `(s, d, v)` need
//!    match.
//!
//! The union of all individual and pairwise tables is the *protocol
//! dependency table* — the virtual channel dependency graph in tabular
//! form, analysed for cycles by [`crate::vcg`].

use crate::gen::GeneratedProtocol;
use crate::vc::VcAssignment;
use ccsql_obs::hash::FxHashMap;
use ccsql_protocol::topology::{QuadPlacement, Role, PLACEMENTS};
use ccsql_protocol::ControllerSpec;
use ccsql_relalg::{ColumnarRelation, Relation, Sym, Value};
use std::collections::HashMap;
use std::ops::Range;

/// A virtual-channel assignment instance: message `msg` travelling from
/// `src` to `dest` over channel `vc`. Roles are already canonicalised
/// under the quad placement of the table the assignment belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Assignment {
    /// Message name.
    pub msg: Sym,
    /// Source role (canonicalised).
    pub src: Role,
    /// Destination role (canonicalised).
    pub dest: Role,
    /// Virtual channel.
    pub vc: Sym,
}

/// How two assignments are matched during composition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MatchMode {
    /// `m, s, d, v` must all agree.
    Exact,
    /// Only `s, d, v` must agree ("the composition requirement is
    /// further relaxed to ignore the messages while matching").
    IgnoreMessages,
}

/// Where a dependency row came from (witness for deadlock reports).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Provenance {
    /// Directly from a controller-table row.
    Direct {
        /// Controller table name.
        controller: &'static str,
        /// Row index in the generated controller table.
        row: usize,
    },
    /// Inferred by composing two earlier dependency rows (indices into
    /// the owning [`DependencyTable::rows`]).
    Composed {
        /// Left row (provides the input assignment).
        left: usize,
        /// Right row (provides the output assignment).
        right: usize,
        /// Match mode used.
        mode: MatchMode,
    },
}

/// One dependency: `input` (the held resource) depends on `output` (the
/// resource that must be acquired).
#[derive(Clone, Copy, Debug)]
pub struct DepRow {
    /// The input assignment.
    pub input: Assignment,
    /// The output assignment.
    pub output: Assignment,
    /// The quad placement this row was derived under.
    pub placement: QuadPlacement,
    /// Where it came from.
    pub provenance: Provenance,
}

/// The protocol dependency table: deduplicated rows plus provenance.
pub struct DependencyTable {
    /// All rows (direct first, then composed), deduplicated on
    /// (input, output, placement).
    pub rows: Vec<DepRow>,
}

/// Configuration of the analysis (the ablation switches of the paper).
#[derive(Clone, Debug)]
pub struct AnalysisConfig {
    /// Quad placements to consider (paper: all five).
    pub placements: Vec<QuadPlacement>,
    /// Whether pairwise composition is performed at all.
    pub compose: bool,
    /// Whether the message-ignoring relaxation is applied during
    /// composition.
    pub ignore_messages: bool,
    /// Repeat composition to a fixpoint (the transitive closure the
    /// paper abandoned: "we abandoned this due to the excessive number
    /// of spurious cycles"). `false` = single pairwise pass.
    pub transitive_closure: bool,
    /// Worker threads for the direct-row generation and the candidate
    /// join of each composition round (`<= 1` = sequential). The result
    /// is byte-identical for every thread count: workers own contiguous
    /// chunks and their outputs are merged in chunk order, reproducing
    /// the sequential row order exactly.
    pub threads: usize,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig {
            placements: PLACEMENTS.to_vec(),
            compose: true,
            ignore_messages: true,
            transitive_closure: false,
            threads: 1,
        }
    }
}

impl AnalysisConfig {
    /// Exact-match only: no placement merging (only `L≠H≠R`), no
    /// message-ignoring (ablation baseline).
    pub fn exact_only() -> AnalysisConfig {
        AnalysisConfig {
            placements: vec![QuadPlacement::AllDistinct],
            compose: true,
            ignore_messages: false,
            transitive_closure: false,
            threads: 1,
        }
    }

    /// The same configuration with `threads` workers.
    pub fn with_threads(mut self, threads: usize) -> AnalysisConfig {
        self.threads = threads;
        self
    }
}

/// Below this many (placement, controller) work units per worker, the
/// direct-row generation runs sequentially: spawning a thread costs more
/// than deriving a unit's rows (BENCH_depend.json once recorded a 13×
/// *slowdown* from parallelising the 40-unit workload).
const PAR_MIN_UNITS_PER_WORKER: usize = 32;

/// Below this many probe rows per worker, a composition round runs
/// sequentially — the same spawn-cost guard as the relalg solver's
/// chunk loops.
const PAR_MIN_ROWS_PER_WORKER: usize = 4096;

/// Run `run` over `0..n` split into at most `threads` contiguous
/// chunks on scoped threads; chunk outputs come back in chunk order,
/// so concatenating them reproduces the sequential iteration order.
///
/// `min_per_worker` is the spawn-cost guard: the worker count is capped
/// at `n / min_per_worker`, so small workloads degrade gracefully to an
/// inline sequential run (and mid-sized ones to fewer workers) instead
/// of paying thread spawn/join for sub-millisecond work. The output is
/// identical for every `threads` value either way.
fn par_chunks<R: Send>(
    n: usize,
    threads: usize,
    min_per_worker: usize,
    run: impl Fn(Range<usize>) -> R + Sync,
) -> Vec<R> {
    let workers = threads
        .max(1)
        .min(n / min_per_worker.max(1))
        .max(1)
        .min(n.max(1));
    if workers <= 1 {
        return vec![run(0..n)];
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                // Clamp both ends: with ceil-division the trailing
                // worker's nominal start can land past `n` (e.g. n=40,
                // workers=12, chunk=4 → worker 11 starts at 44), which
                // must become an empty range, not an out-of-bounds slice.
                let lo = (w * chunk).min(n);
                let hi = ((w + 1) * chunk).min(n);
                let run = &run;
                s.spawn(move || run(lo..hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("depend worker panicked"))
            .collect()
    })
}

/// A resolved `(msg, src, dest, vc)` assignment *before* quad-placement
/// canonicalisation — shared by all five placements of a controller.
#[derive(Clone, Copy, Debug)]
struct PreAssignment {
    msg: Sym,
    src: Role,
    dest: Role,
    vc: Sym,
}

impl PreAssignment {
    #[inline]
    fn canon(self, placement: QuadPlacement) -> Assignment {
        Assignment {
            msg: self.msg,
            src: placement.canon(self.src),
            dest: placement.canon(self.dest),
            vc: self.vc,
        }
    }
}

/// A controller table pre-resolved for dependency extraction.
///
/// The old path re-did the whole string pipeline — `index_of_str` per
/// triple, `Sym::as_str` + `Role::parse`, the `V` lookup by message
/// *name* — for every row under every one of the five quad placements.
/// This resolves each table **once**: the relation goes columnar as
/// interned value ids, each triple's three columns are located once,
/// and every *distinct* id-triple is resolved through a memo (the
/// column domains are tiny, so almost every row is a memo hit). What
/// remains per placement is a pure array scan plus the placement's role
/// canonicalisation.
struct ResolvedController {
    ctrl_name: &'static str,
    rows: usize,
    /// Per input triple, per row: the resolved assignment (pre-canon).
    inputs: Vec<Vec<Option<PreAssignment>>>,
    /// Per output triple, per row: the resolved assignment (pre-canon).
    outputs: Vec<Vec<Option<PreAssignment>>>,
}

impl ResolvedController {
    fn new(ctrl: &ControllerSpec, table: &Relation, v: &VcAssignment) -> ResolvedController {
        let cols = ColumnarRelation::from_relation(table);
        let rows = cols.len();
        let schema = table.schema();
        let mut memo: FxHashMap<(u32, u32, u32), Option<PreAssignment>> = FxHashMap::default();
        let mut resolve_triple = |t: &ccsql_protocol::MsgTriple| -> Vec<Option<PreAssignment>> {
            let (Some(mi), Some(si), Some(di)) = (
                schema.index_of_str(t.msg),
                schema.index_of_str(t.src),
                schema.index_of_str(t.dest),
            ) else {
                return vec![None; rows];
            };
            let (mc, sc, dc) = (cols.col(mi), cols.col(si), cols.col(di));
            (0..rows)
                .map(|i| {
                    *memo
                        .entry((mc[i], sc[i], dc[i]))
                        .or_insert_with(|| resolve_ids(mc[i], sc[i], dc[i], v))
                })
                .collect()
        };
        let inputs = ctrl.input_triples.iter().map(&mut resolve_triple).collect();
        let outputs = ctrl
            .output_triples
            .iter()
            .map(&mut resolve_triple)
            .collect();
        ResolvedController {
            ctrl_name: ctrl.name,
            rows,
            inputs,
            outputs,
        }
    }

    /// The individual dependency rows under one placement — the same
    /// rows, in the same order, as the original per-row resolution.
    fn dep_rows(&self, placement: QuadPlacement) -> Vec<DepRow> {
        let mut out = Vec::new();
        for ri in 0..self.rows {
            for it in &self.inputs {
                let Some(input) = it[ri] else {
                    continue;
                };
                let input = input.canon(placement);
                for ot in &self.outputs {
                    let Some(output) = ot[ri] else {
                        continue;
                    };
                    out.push(DepRow {
                        input,
                        output: output.canon(placement),
                        placement,
                        provenance: Provenance::Direct {
                            controller: self.ctrl_name,
                            row: ri,
                        },
                    });
                }
            }
        }
        out
    }
}

/// Resolve one interned id-triple against `V`: decode, parse roles, look
/// up the channel, drop dedicated paths.
fn resolve_ids(m: u32, s: u32, d: u32, v: &VcAssignment) -> Option<PreAssignment> {
    let msg = Value::from_vid(m).as_sym()?;
    let src = Role::parse(Value::from_vid(s).as_sym()?.as_str())?;
    let dest = Role::parse(Value::from_vid(d).as_sym()?.as_str())?;
    let vc = v.lookup(msg.as_str(), src, dest)?;
    if v.is_dedicated(vc) {
        return None;
    }
    Some(PreAssignment {
        msg,
        src,
        dest,
        vc: Sym::intern(vc),
    })
}

/// Extract the individual controller dependency table of one controller
/// under one quad placement.
///
/// For every controller-table row: the input `(msg, src, dest)` triple is
/// looked up in `V` (with the *physical* roles), roles are then
/// canonicalised under `placement`; each non-`NULL` output triple
/// likewise. One dependency row is added per output assignment
/// ("multiple outgoing messages for an incoming message lead to multiple
/// entries"). Assignments on dedicated paths contribute nothing.
pub fn controller_dependency_rows(
    ctrl: &ControllerSpec,
    table: &Relation,
    v: &VcAssignment,
    placement: QuadPlacement,
) -> Vec<DepRow> {
    ResolvedController::new(ctrl, table, v).dep_rows(placement)
}

/// Composition match key: message (unless ignored), source, destination
/// and channel.
type Key = (Option<Sym>, Role, Role, Sym);

fn match_key(a: &Assignment, mode: MatchMode) -> Key {
    match mode {
        MatchMode::Exact => (Some(a.msg), a.src, a.dest, a.vc),
        MatchMode::IgnoreMessages => (None, a.src, a.dest, a.vc),
    }
}

/// Build the full protocol dependency table for assignment `v` under
/// configuration `cfg`.
pub fn protocol_dependency_table(
    gen: &GeneratedProtocol,
    v: &VcAssignment,
    cfg: &AnalysisConfig,
) -> ccsql_relalg::Result<DependencyTable> {
    let _span = ccsql_obs::span("depend", "build");
    let fspan = ccsql_obs::flight::span("depend", "build");
    let mut rows: Vec<DepRow> = Vec::new();
    let mut seen: FxHashMap<(Assignment, Assignment, u8), usize> = FxHashMap::default();
    let mut dedup_hits: u64 = 0;
    let placement_id = |p: QuadPlacement| PLACEMENTS.iter().position(|&q| q == p).unwrap() as u8;

    let mut push = |rows: &mut Vec<DepRow>, r: DepRow| -> bool {
        let key = (r.input, r.output, placement_id(r.placement));
        match seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(rows.len());
                rows.push(r);
                true
            }
        }
    };

    // Resolve every controller table once — columnar ids + memoised
    // triple lookups — then fan the five placements out over the shared
    // resolutions instead of re-resolving per placement.
    let resolved: Vec<ResolvedController> = {
        let _rspan = ccsql_obs::flight::span("depend", "resolve");
        gen.spec
            .controllers
            .iter()
            .map(|c| Ok(ResolvedController::new(c, gen.table(c.name)?, v)))
            .collect::<ccsql_relalg::Result<_>>()?
    };

    // Individual controller dependency tables: one work unit per
    // (placement, controller) pair, generated in parallel and merged in
    // unit order (placement-major), i.e. the sequential order.
    let mut units: Vec<(QuadPlacement, &ResolvedController)> = Vec::new();
    for &placement in &cfg.placements {
        for rc in &resolved {
            units.push((placement, rc));
        }
    }
    let direct_span = ccsql_obs::flight::span("depend", "direct");
    let unit_rows: Vec<Vec<Vec<DepRow>>> = par_chunks(
        units.len(),
        cfg.threads,
        PAR_MIN_UNITS_PER_WORKER,
        |range| units[range].iter().map(|&(p, rc)| rc.dep_rows(p)).collect(),
    );
    let mut generated = unit_rows.into_iter().flatten();
    for &placement in &cfg.placements {
        let before = rows.len();
        for _ in &gen.spec.controllers {
            for r in generated.next().expect("one output per unit") {
                if !push(&mut rows, r) {
                    dedup_hits += 1;
                }
            }
        }
        if ccsql_obs::trace_enabled() {
            ccsql_obs::emit(
                "depend",
                "placement",
                vec![
                    ("placement", placement.notation().into()),
                    ("rows", (rows.len() - before).into()),
                ],
            );
        }
    }
    let direct = rows.len();
    direct_span.arg("units", units.len());
    direct_span.arg("rows", direct);
    drop(direct_span);

    if !cfg.compose {
        fspan.arg("rows", rows.len());
        record_depend_metrics(direct, rows.len(), dedup_hits, cfg.threads);
        return Ok(DependencyTable { rows });
    }

    // Pairwise composition (optionally to a fixpoint). Matching is done
    // within a placement: each placement models one physical layout.
    let mut modes = vec![MatchMode::Exact];
    if cfg.ignore_messages {
        modes.push(MatchMode::IgnoreMessages);
    }
    let mut round = 0u64;
    loop {
        round += 1;
        let round_span = ccsql_obs::flight::span("depend", "round");
        round_span.arg("round", round);
        round_span.arg("rows_in", rows.len());
        // Index current rows by (placement, input key) — the build side
        // of the hash join.
        let mut index: FxHashMap<(u8, Key), Vec<usize>> = FxHashMap::default();
        for (i, r) in rows.iter().enumerate() {
            for &mode in &modes {
                index
                    .entry((placement_id(r.placement), match_key(&r.input, mode)))
                    .or_default()
                    .push(i);
            }
        }
        // Probe side, partitioned by left row across workers. Each
        // worker owns a contiguous chunk of left rows and emits its
        // candidates in (left, mode, right) order, so concatenating the
        // chunks reproduces the sequential candidate order exactly.
        let candidate_chunks: Vec<Vec<DepRow>> =
            par_chunks(rows.len(), cfg.threads, PAR_MIN_ROWS_PER_WORKER, |range| {
                let mut out: Vec<DepRow> = Vec::new();
                for li in range {
                    let left = &rows[li];
                    for &mode in &modes {
                        let key = (placement_id(left.placement), match_key(&left.output, mode));
                        if let Some(cands) = index.get(&key) {
                            for &ri in cands {
                                out.push(DepRow {
                                    input: left.input,
                                    output: rows[ri].output,
                                    placement: left.placement,
                                    provenance: Provenance::Composed {
                                        left: li,
                                        right: ri,
                                        mode,
                                    },
                                });
                            }
                        }
                    }
                }
                out
            });
        // Round barrier: merge + dedup sequentially, in chunk order.
        let mut added = false;
        for r in candidate_chunks.into_iter().flatten() {
            if push(&mut rows, r) {
                added = true;
            } else {
                dedup_hits += 1;
            }
        }
        round_span.arg("rows_out", rows.len());
        if !cfg.transitive_closure || !added {
            break;
        }
    }
    fspan.arg("rows", rows.len());
    fspan.arg("rounds", round);
    record_depend_metrics(direct, rows.len(), dedup_hits, cfg.threads);
    Ok(DependencyTable { rows })
}

/// Record one dependency-table construction into the global `ccsql_obs`
/// registry (no-op when metrics are disabled).
fn record_depend_metrics(direct: usize, total: usize, dedup_hits: u64, threads: usize) {
    if !ccsql_obs::enabled() {
        return;
    }
    let reg = ccsql_obs::global();
    reg.counter("depend.tables").inc();
    reg.counter("depend.rows_direct").add(direct as u64);
    reg.counter("depend.rows_composed")
        .add(total.saturating_sub(direct) as u64);
    reg.counter("depend.dedup_hits").add(dedup_hits);
    reg.gauge("depend.threads").set(threads.max(1) as f64);
}

impl DependencyTable {
    /// The tabular form of the protocol dependency table (the paper's
    /// 8-column database table `m1,s1,d1,v1,m2,s2,d2,v2`, plus the
    /// placement relation).
    pub fn as_relation(&self) -> Relation {
        let mut rel =
            Relation::with_columns(["m1", "s1", "d1", "v1", "m2", "s2", "d2", "v2", "placement"])
                .expect("static schema");
        for r in &self.rows {
            rel.push_row(&[
                Value::Sym(r.input.msg),
                Value::sym(r.input.src.as_str()),
                Value::sym(r.input.dest.as_str()),
                Value::Sym(r.input.vc),
                Value::Sym(r.output.msg),
                Value::sym(r.output.src.as_str()),
                Value::sym(r.output.dest.as_str()),
                Value::Sym(r.output.vc),
                Value::sym(r.placement.notation()),
            ])
            .expect("arity");
        }
        rel
    }

    /// Distinct channel-dependency edges `(vc1, vc2)` with one witness
    /// row index each.
    pub fn edges(&self) -> HashMap<(Sym, Sym), usize> {
        let mut edges = HashMap::new();
        for (i, r) in self.rows.iter().enumerate() {
            edges.entry((r.input.vc, r.output.vc)).or_insert(i);
        }
        edges
    }

    /// Trace the direct controller-row witnesses underlying row `i`.
    pub fn direct_witnesses(&self, i: usize) -> Vec<(&'static str, usize)> {
        let mut out = Vec::new();
        let mut stack = vec![i];
        while let Some(j) = stack.pop() {
            match self.rows[j].provenance {
                Provenance::Direct { controller, row } => out.push((controller, row)),
                Provenance::Composed { left, right, .. } => {
                    stack.push(right);
                    stack.push(left);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::GeneratedProtocol;
    use std::sync::OnceLock;

    fn generated() -> &'static GeneratedProtocol {
        static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
        GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
    }

    #[test]
    fn directory_rows_include_figure4_r2() {
        // R2: (idone, remote, home, VC2) → (mread, home, home, VC4).
        let g = generated();
        let d = g.controller("D").unwrap();
        let rows = controller_dependency_rows(
            d,
            g.table("D").unwrap(),
            &VcAssignment::v1(),
            QuadPlacement::AllDistinct,
        );
        assert!(rows.iter().any(|r| {
            r.input.msg.as_str() == "idone"
                && r.input.src == Role::Remote
                && r.input.vc.as_str() == "VC2"
                && r.output.msg.as_str() == "mread"
                && r.output.vc.as_str() == "VC4"
        }));
    }

    #[test]
    fn memory_rows_include_figure4_r1() {
        // R1: (wb, home, home, VC4) → (compl, home, home, VC2).
        let g = generated();
        let m = g.controller("M").unwrap();
        let rows = controller_dependency_rows(
            m,
            g.table("M").unwrap(),
            &VcAssignment::v1(),
            QuadPlacement::AllDistinct,
        );
        assert!(rows.iter().any(|r| {
            r.input.msg.as_str() == "wb"
                && r.input.vc.as_str() == "VC4"
                && r.output.msg.as_str() == "compl"
                && r.output.vc.as_str() == "VC2"
        }));
    }

    #[test]
    fn placement_canonicalises_roles() {
        // Under L≠H=R the idone input assignment becomes (idone, home,
        // home, VC2) — the paper's R2′.
        let g = generated();
        let d = g.controller("D").unwrap();
        let rows = controller_dependency_rows(
            d,
            g.table("D").unwrap(),
            &VcAssignment::v1(),
            QuadPlacement::HomeRemote,
        );
        assert!(rows.iter().any(|r| {
            r.input.msg.as_str() == "idone"
                && r.input.src == Role::Home
                && r.input.dest == Role::Home
                && r.input.vc.as_str() == "VC2"
        }));
    }

    #[test]
    fn dedicated_path_contributes_no_rows() {
        let g = generated();
        let d = g.controller("D").unwrap();
        let rows = controller_dependency_rows(
            d,
            g.table("D").unwrap(),
            &VcAssignment::v2(),
            QuadPlacement::AllDistinct,
        );
        assert!(rows
            .iter()
            .all(|r| r.input.vc.as_str() != "PATH" && r.output.vc.as_str() != "PATH"));
        // In particular the idone→mread dependency is gone.
        assert!(!rows
            .iter()
            .any(|r| r.input.msg.as_str() == "idone" && r.output.msg.as_str() == "mread"));
    }

    #[test]
    fn composition_infers_figure4_cycle_row() {
        // Composing R1 with R2′ under L≠H=R with message-ignoring yields
        // R3: (wb, home, home, VC4, mread, home, home, VC4) — a VC4
        // self-dependency.
        let g = generated();
        let table =
            protocol_dependency_table(g, &VcAssignment::v1(), &AnalysisConfig::default()).unwrap();
        let r3 = table.rows.iter().position(|r| {
            r.placement == QuadPlacement::HomeRemote
                && r.input.msg.as_str() == "wb"
                && r.input.vc.as_str() == "VC4"
                && r.output.msg.as_str() == "mread"
                && r.output.vc.as_str() == "VC4"
        });
        let r3 = r3.expect("paper row R3 not inferred");
        // Its witnesses trace back to real controller rows in M and D.
        let wits = table.direct_witnesses(r3);
        let ctrls: Vec<&str> = wits.iter().map(|(c, _)| *c).collect();
        assert!(ctrls.contains(&"M") && ctrls.contains(&"D"));
    }

    #[test]
    fn no_composition_config_yields_only_direct_rows() {
        let g = generated();
        let cfg = AnalysisConfig {
            compose: false,
            ..AnalysisConfig::default()
        };
        let table = protocol_dependency_table(g, &VcAssignment::v1(), &cfg).unwrap();
        assert!(table
            .rows
            .iter()
            .all(|r| matches!(r.provenance, Provenance::Direct { .. })));
    }

    #[test]
    fn closure_adds_rows_over_single_pass() {
        let g = generated();
        let single =
            protocol_dependency_table(g, &VcAssignment::v0(), &AnalysisConfig::default()).unwrap();
        let closure = protocol_dependency_table(
            g,
            &VcAssignment::v0(),
            &AnalysisConfig {
                transitive_closure: true,
                ..AnalysisConfig::default()
            },
        )
        .unwrap();
        assert!(closure.rows.len() >= single.rows.len());
    }

    #[test]
    fn thread_count_does_not_change_the_table() {
        // Parallel generation + composition must be byte-identical to
        // sequential: same rows, same order, same provenance — not just
        // the same set.
        let g = generated();
        let base = AnalysisConfig {
            transitive_closure: true,
            ..AnalysisConfig::default()
        };
        let seq = protocol_dependency_table(g, &VcAssignment::v1(), &base).unwrap();
        // 12 and 32 deliberately do not divide the unit count (5
        // placements × controllers): with ceil-division chunking the
        // trailing workers get empty ranges, which must not panic.
        for threads in [2, 4, 8, 12, 32] {
            let par = protocol_dependency_table(
                g,
                &VcAssignment::v1(),
                &base.clone().with_threads(threads),
            )
            .unwrap();
            assert_eq!(seq.rows.len(), par.rows.len(), "{threads} threads");
            for (i, (a, b)) in seq.rows.iter().zip(&par.rows).enumerate() {
                assert_eq!(
                    (a.input, a.output, a.placement, a.provenance),
                    (b.input, b.output, b.placement, b.provenance),
                    "row {i} differs at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn par_chunks_covers_every_index_for_awkward_worker_counts() {
        // Thread counts that don't divide n leave trailing workers with
        // nominal starts past n (e.g. n=40, threads=12 → chunk=4, worker
        // 11 would start at 44); those must become empty ranges, and the
        // concatenated chunks must still be exactly 0..n in order.
        for (n, threads) in [
            (40, 12),
            (40, 16),
            (40, 24),
            (40, 32),
            (5, 3),
            (1, 8),
            (0, 4),
        ] {
            let chunks = par_chunks(n, threads, 1, |r| r.collect::<Vec<usize>>());
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(
                flat,
                (0..n).collect::<Vec<usize>>(),
                "n={n} threads={threads}"
            );
        }
    }

    #[test]
    fn spawn_cost_guard_caps_workers_by_workload() {
        // The guard runs small workloads inline (one chunk), mid-sized
        // ones on fewer workers than requested, and never changes the
        // concatenated output.
        for (n, threads, min, want_chunks) in [
            (40, 4, 32, 1),     // the regressing depend workload: inline
            (64, 4, 32, 2),     // 2×32 units → 2 workers despite threads=4
            (40, 4, 1, 4),      // min=1 keeps the old behaviour
            (8192, 4, 4096, 2), // solver-sized guard
            (4095, 8, 4096, 1),
        ] {
            let chunks = par_chunks(n, threads, min, |r| r.collect::<Vec<usize>>());
            assert_eq!(
                chunks.len(),
                want_chunks,
                "n={n} threads={threads} min={min}"
            );
            let flat: Vec<usize> = chunks.into_iter().flatten().collect();
            assert_eq!(flat, (0..n).collect::<Vec<usize>>());
        }
    }

    #[test]
    fn relation_form_has_nine_columns() {
        let g = generated();
        let table =
            protocol_dependency_table(g, &VcAssignment::v2(), &AnalysisConfig::default()).unwrap();
        let rel = table.as_relation();
        assert_eq!(rel.arity(), 9);
        assert_eq!(rel.len(), table.rows.len());
    }
}
