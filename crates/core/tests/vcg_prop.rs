//! Property test: `Vcg::simple_cycles` against a brute-force simple
//! cycle enumerator, over randomly generated small VCGs.
//!
//! No property-testing framework is available (zero-dependency repo),
//! so this is the classic hand-rolled shape: a seeded `SplitMix64`
//! drives case generation, every failure prints its seed, and re-running
//! with that seed reproduces the case exactly.

use ccsql::depend::{Assignment, DepRow, DependencyTable, Provenance};
use ccsql::vcg::Vcg;
use ccsql_obs::SplitMix64;
use ccsql_protocol::topology::{QuadPlacement, Role};
use ccsql_relalg::Sym;
use std::collections::BTreeSet;

const MAX_CHANNELS: usize = 8;
const CASES: u64 = 200;

fn vc(i: usize) -> Sym {
    Sym::intern(&format!("VC{i}"))
}

/// A random dependency table over at most [`MAX_CHANNELS`] channels.
/// Edge density is itself randomised per case so the suite covers the
/// sparse (mostly acyclic) and dense (many overlapping cycles) regimes.
fn random_table(rng: &mut SplitMix64) -> DependencyTable {
    let n = 2 + (rng.next_u64() as usize) % (MAX_CHANNELS - 1);
    let density_pct = 5 + rng.next_u64() % 40;
    let mut rows = Vec::new();
    for from in 0..n {
        for to in 0..n {
            if rng.next_u64() % 100 < density_pct {
                rows.push(DepRow {
                    input: Assignment {
                        msg: Sym::intern("m_in"),
                        src: Role::Home,
                        dest: Role::Home,
                        vc: vc(from),
                    },
                    output: Assignment {
                        msg: Sym::intern("m_out"),
                        src: Role::Home,
                        dest: Role::Home,
                        vc: vc(to),
                    },
                    placement: QuadPlacement::AllDistinct,
                    provenance: Provenance::Direct {
                        controller: "T",
                        row: 0,
                    },
                });
            }
        }
    }
    DependencyTable { rows }
}

/// Canonical form of a simple cycle: rotate the vertex sequence so the
/// smallest vertex leads. Two edge lists describe the same simple cycle
/// iff their canonical forms agree.
fn canon(edges: &[ccsql::vcg::Edge]) -> Vec<Sym> {
    let verts: Vec<Sym> = edges.iter().map(|e| e.from).collect();
    let min = verts
        .iter()
        .enumerate()
        .min_by_key(|&(_, v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = verts[min..].to_vec();
    out.extend_from_slice(&verts[..min]);
    out
}

/// Brute-force enumeration of every simple cycle: DFS from each root
/// over nodes ≥ root (the same canonical rooting the implementation
/// uses, re-derived independently from the raw adjacency).
fn brute_force_cycles(table: &DependencyTable) -> BTreeSet<Vec<Sym>> {
    // Independent adjacency reconstruction from the rows.
    let mut verts: Vec<Sym> = table
        .rows
        .iter()
        .flat_map(|r| [r.input.vc, r.output.vc])
        .collect();
    verts.sort();
    verts.dedup();
    let idx = |s: Sym| verts.iter().position(|&v| v == s).unwrap();
    let mut adj = vec![BTreeSet::new(); verts.len()];
    for r in &table.rows {
        adj[idx(r.input.vc)].insert(idx(r.output.vc));
    }
    let mut out = BTreeSet::new();
    let n = verts.len();
    for root in 0..n {
        let mut stack = vec![(root, vec![root])];
        while let Some((v, path)) = stack.pop() {
            for &w in &adj[v] {
                if w == root {
                    out.insert(canon_indices(&path, &verts));
                } else if w > root && !path.contains(&w) {
                    let mut p = path.clone();
                    p.push(w);
                    stack.push((w, p));
                }
            }
        }
    }
    out
}

fn canon_indices(path: &[usize], verts: &[Sym]) -> Vec<Sym> {
    let syms: Vec<Sym> = path.iter().map(|&i| verts[i]).collect();
    let min = syms
        .iter()
        .enumerate()
        .min_by_key(|&(_, v)| v)
        .map(|(i, _)| i)
        .unwrap_or(0);
    let mut out = syms[min..].to_vec();
    out.extend_from_slice(&syms[..min]);
    out
}

#[test]
fn simple_cycles_match_brute_force() {
    let mut rng = SplitMix64::new(0xCC5A_11DE_ADBE_EF01);
    for case in 0..CASES {
        let seed = rng.next_u64();
        let mut case_rng = SplitMix64::new(seed);
        let table = random_table(&mut case_rng);
        let expected = brute_force_cycles(&table);
        let g = Vcg::build(&table);

        // Uncapped enumeration must agree exactly with brute force.
        let got = g.simple_cycles(usize::MAX);
        let got_canon: BTreeSet<Vec<Sym>> = got.iter().map(|c| canon(c)).collect();
        assert_eq!(
            got_canon.len(),
            got.len(),
            "case {case} (seed {seed:#x}): duplicate simple cycles"
        );
        assert_eq!(
            got_canon, expected,
            "case {case} (seed {seed:#x}): cycle sets differ"
        );

        // Every reported edge list is a closed walk over real edges.
        for c in &got {
            assert_eq!(c[0].from, c[c.len() - 1].to, "seed {seed:#x}: not closed");
            for w in c.windows(2) {
                assert_eq!(w[0].to, w[1].from, "seed {seed:#x}: walk breaks");
            }
            for e in c {
                assert!(
                    g.has_edge(e.from.as_str(), e.to.as_str()),
                    "seed {seed:#x}: phantom edge {} -> {}",
                    e.from,
                    e.to
                );
            }
        }

        // The cap truncates (never pads) and is exact below the total.
        let total = expected.len();
        for limit in [0, 1, total / 2, total, total + 3] {
            let capped = g.simple_cycles(limit).len();
            assert_eq!(
                capped,
                total.min(limit),
                "case {case} (seed {seed:#x}): limit {limit} of {total}"
            );
        }

        // SCC verdict consistency: cycles exist iff some simple cycle does.
        assert_eq!(
            g.is_acyclic(),
            expected.is_empty(),
            "case {case} (seed {seed:#x}): SCC and enumeration disagree"
        );
    }
}

/// The truncation counter in the deadlock report: a graph with more
/// simple cycles than the cap must set the flag; a small one must not.
#[test]
fn report_truncation_flag_tracks_cap() {
    use ccsql::gen::GeneratedProtocol;
    use ccsql::report::deadlock_report;

    // A complete digraph on 6 vertices has 409 simple cycles — far past
    // the report's cap of 32.
    let mut rows = Vec::new();
    for from in 0..6 {
        for to in 0..6 {
            if from != to {
                rows.push(DepRow {
                    input: Assignment {
                        msg: Sym::intern("m"),
                        src: Role::Home,
                        dest: Role::Home,
                        vc: vc(from),
                    },
                    output: Assignment {
                        msg: Sym::intern("m"),
                        src: Role::Home,
                        dest: Role::Home,
                        vc: vc(to),
                    },
                    placement: QuadPlacement::AllDistinct,
                    provenance: Provenance::Direct {
                        controller: "T",
                        row: 0,
                    },
                });
            }
        }
    }
    let dense = DependencyTable { rows };
    assert_eq!(brute_force_cycles(&dense).len(), 409);
    let gen = GeneratedProtocol::generate_default().unwrap();
    let rep = deadlock_report(&gen, "T", &dense);
    assert!(rep.simple_cycles_truncated);
    assert_eq!(rep.simple_cycles, 32, "count reports the cap, not beyond");
    assert!(rep.render().contains('≥'), "render marks the lower bound");
}
