//! Section 5 end-to-end: map the debugged directory table onto the
//! split request/response hardware implementation.
//!
//! * extend `D` with `Qstatus`/`Dqstatus`/`Fdback` (+ the `Dfdback`
//!   feedback request) to form `ED`;
//! * partition `ED` into the nine implementation tables with
//!   `CREATE TABLE … AS SELECT DISTINCT`;
//! * verify the mapping (reconstruct `ED`, check `D` is preserved);
//! * emit code from one implementation table ("SQL report generation").
//!
//! Run with: `cargo run --example hardware_mapping`

use ccsql_suite::core::codegen;
use ccsql_suite::core::gen::GeneratedProtocol;
use ccsql_suite::core::hwmap::HwMapping;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen = GeneratedProtocol::generate_default()?;
    let d = gen.table("D")?;
    println!("Debugged D: {} rows x {} columns", d.len(), d.arity());

    let mapping = HwMapping::build(&gen)?;
    println!(
        "Extended ED: {} rows x {} columns (adds Qstatus, Dqstatus, Fdback, Dfdback)",
        mapping.ed.len(),
        mapping.ed.arity()
    );
    println!("\nNine implementation tables:");
    for (name, rel) in &mapping.impl_tables {
        println!(
            "  {name:<18} {:4} rows x {:2} columns",
            rel.len(),
            rel.arity()
        );
    }

    let check = mapping.check(d)?;
    println!(
        "\nMapping checks: ED reconstructible from the nine tables: {} | debugged D preserved: {}",
        check.ed_reconstructed, check.d_preserved
    );
    assert!(check.ok(), "the mapping must preserve the debugged table");

    // Code generation from the first implementation table.
    let (name, rel) = &mapping.impl_tables[0];
    let n_inputs = ccsql_suite::core::hwmap::IMPL_INPUTS.len() + 11;
    let verilog = codegen::verilog_case(name, rel, n_inputs);
    let rust = codegen::rust_match(name, rel, n_inputs);
    println!(
        "\nGenerated {} lines of Verilog and {} lines of Rust for {name}.",
        verilog.lines().count(),
        rust.lines().count()
    );
    println!("--- Verilog preview ---");
    for line in verilog.lines().take(12) {
        println!("{line}");
    }
    println!("…");
    Ok(())
}
