//! Drive the generated tables as an actual machine.
//!
//! * Replay the exact Figure-4 interleaving: with the pre-fix channel
//!   assignment the machine deadlocks on VC2/VC4; with the dedicated
//!   directory→memory path it drains and stays coherent.
//! * Then run a randomized multi-quad workload through the debugged
//!   tables with the value-level coherence checker enabled.
//!
//! Run with: `cargo run --release --example simulate_asura`

use ccsql_suite::core::gen::GeneratedProtocol;
use ccsql_suite::protocol::topology::NodeId;
use ccsql_suite::sim::{Fig4, Mix, Outcome, Schedule, Sim, SimConfig, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen = GeneratedProtocol::generate_default()?;

    // ---- Figure 4, dynamically -------------------------------------
    println!("=== Figure 4 replay (shared VC4, capacity 1) ===");
    match Fig4::default().replay(&gen, false)? {
        Outcome::Deadlock(info) => print!("{info}"),
        other => panic!("expected the Figure-4 deadlock, got {other:?}"),
    }
    println!("\n=== Figure 4 replay (dedicated directory→memory path) ===");
    match Fig4::default().replay(&gen, true)? {
        Outcome::Quiescent => println!("drained cleanly — the paper's fix works dynamically."),
        other => panic!("expected quiescence, got {other:?}"),
    }

    // ---- Random workloads -------------------------------------------
    println!("\n=== Random workload: 4 quads x 2 nodes, 200 ops/node ===");
    let cfg = SimConfig {
        quads: 4,
        nodes_per_quad: 2,
        vc_capacity: 2,
        dedicated_mem_path: true,
        schedule: Schedule::Random(2003),
        max_steps: 5_000_000,
    };
    let nodes: Vec<NodeId> = (0..cfg.quads)
        .flat_map(|q| (0..cfg.nodes_per_quad).map(move |n| NodeId::new(q, n)))
        .collect();
    let wl = Workload::random(&nodes, 200, 16, Mix::default(), 2003);
    let mut sim = Sim::new(&gen, cfg, wl);
    let out = sim.run()?;
    assert!(matches!(out, Outcome::Quiescent), "{out:?}");
    sim.audit()?;
    let s = sim.stats;
    println!(
        "quiescent after {} steps: {} ops issued, {} cache hits, {} transactions completed,",
        s.steps, s.issued, s.hits, s.completed
    );
    println!(
        "{} retries (busy-line serialisation), {} messages, {} read values checked — coherent.",
        s.retries, s.msgs, s.read_checks
    );
    println!("\nper-operation latency (engine steps, issue → completion):");
    for (op, agg) in sim.latency_report() {
        println!(
            "  {:<12} n={:<5} mean={:<6.1} max={}",
            op,
            agg.count,
            agg.mean(),
            agg.max
        );
    }
    Ok(())
}
