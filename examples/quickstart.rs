//! Quickstart: the paper's push-button flow in five steps.
//!
//! 1. Build the protocol specification (column tables + column
//!    constraints for all 8 controllers).
//! 2. Generate every controller table with the constraint solver.
//! 3. Print the Figure-3 slice of the directory table (the read
//!    exclusive transaction).
//! 4. Run the ~50-invariant SQL suite.
//! 5. Query the central database interactively, SQL-style.
//!
//! Run with: `cargo run --example quickstart`

use ccsql_suite::core::gen::GeneratedProtocol;
use ccsql_suite::core::invariants;
use ccsql_suite::protocol::directory;
use ccsql_suite::relalg::{report, GenMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Steps 1+2: generate all eight controller tables from constraints.
    let mut gen = GeneratedProtocol::generate_default()?;
    println!("Generated controller tables:");
    for name in ["D", "M", "N", "R", "C", "IO", "L", "CFG"] {
        let t = gen.table(name)?;
        let st = &gen.stats[name];
        println!(
            "  {name:>3}: {:4} rows x {:2} columns  ({} candidate rows considered, {:?})",
            t.len(),
            t.arity(),
            st.candidates,
            st.elapsed
        );
    }

    // Step 3: the compact Figure-3 table (readex transaction only).
    let (fig3, _) =
        directory::fig3_spec().generate(GenMode::Incremental, &GeneratedProtocol::context())?;
    println!("\nFigure 3 — table for the read exclusive transaction:");
    print!("{}", report::ascii_table(&fig3.sorted()));

    // Step 4: the invariant suite ("[Select …] = empty" checks).
    let results = invariants::check_all(&mut gen.db)?;
    let failed = invariants::failures(&results);
    println!(
        "\nInvariant suite: {} invariants checked, {} violated.",
        results.len(),
        failed.len()
    );
    assert!(failed.is_empty(), "debugged tables must satisfy the suite");

    // Step 5: ad-hoc SQL over the central database.
    let busy = gen
        .db
        .query("select distinct bdirst from D where not bdirst = \"I\"")?;
    println!(
        "Busy states reachable in D: {} (\"around 40 Busy states\")",
        busy.len()
    );
    let retries = gen
        .db
        .query("select inmsg from D where isrequest(inmsg) and locmsg = retry")?;
    println!("Retry rows (request serialisation): {}", retries.len());
    Ok(())
}
