//! The generality claim: "The approach can be easily applied to other
//! cache coherence protocols" — the same methodology (column tables +
//! column constraints → solver → SQL checks → revision diffing) applied
//! to a bus-based snooping MSI protocol.
//!
//! Run with: `cargo run --release --example other_protocols`

use ccsql_suite::core::diff::TableDiff;
use ccsql_suite::protocol::snooping;
use ccsql_suite::relalg::{report, Database, Sym, Value};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate the three snooping controllers from constraints.
    let tables = snooping::generate_all()?;
    let mut db = Database::new();
    println!("Snooping MSI protocol — generated controller tables:");
    for (name, rel) in &tables {
        println!(
            "  {name:<3} {:>3} rows x {} columns",
            rel.len(),
            rel.arity()
        );
        db.put_table(name, rel.clone());
    }

    // 2. Check its own SQL invariant suite.
    let mut violated = 0;
    for (name, sql) in snooping::invariant_sqls() {
        let witnesses = db.query(sql)?;
        if !witnesses.is_empty() {
            violated += 1;
            println!("VIOLATED {name}:\n{}", report::ascii_table(&witnesses));
        }
    }
    println!(
        "\nInvariant suite: {} invariants, {} violated.",
        snooping::invariant_sqls().len(),
        violated
    );
    assert_eq!(violated, 0);

    // 3. A specification revision, reviewed as a table diff: suppose a
    //    designer edits the arbiter so a dirty GETS no longer writes the
    //    supplied data back to memory (a real protocol-family choice —
    //    but here it breaks this protocol's invariant).
    let ba = db.table("BA")?.clone();
    let mut revised = ba.clone();
    {
        let s = revised.schema().clone();
        let req = s.index_of_str("req").unwrap();
        let dirty = s.index_of_str("dirty").unwrap();
        let memact = s.index_of_str("memact").unwrap();
        let mut rows: Vec<Vec<Value>> = revised.rows().map(|r| r.to_vec()).collect();
        for r in &mut rows {
            if r[req] == Value::sym("gets") && r[dirty] == Value::sym("yes") {
                r[memact] = Value::Null;
            }
        }
        let mut rel = ccsql_suite::relalg::Relation::new(s);
        for r in rows {
            rel.push_row(&r)?;
        }
        revised = rel;
    }
    let diff = TableDiff::diff(&ba, &revised, &[Sym::intern("req"), Sym::intern("dirty")])?;
    println!(
        "\nRevision diff of BA (keyed on inputs):\n{}",
        diff.render(ba.schema())
    );

    db.put_table("BA", revised);
    let witnesses = db.query(
        r#"select req, dirty, memact from BA where dirty = "yes" and not memact = "mem_write" and not req = "upg""#,
    )?;
    println!(
        "Re-running the dirty-data invariant on the revision: {} witness row(s) — the edit is \
         caught before any implementation work.",
        witnesses.len()
    );
    assert!(!witnesses.is_empty());
    print!("{}", report::ascii_table(&witnesses));
    Ok(())
}
