//! The full Figure-4 story: hunt deadlocks across the three historical
//! virtual-channel assignments.
//!
//! * `V0` — four channels; directory↔memory traffic shares VC0/VC2 and
//!   "several cycles leading to deadlocks were found. Most of these
//!   deadlocks involved the directory controller and the memory
//!   controller at the home node."
//! * `V1` — VC4 added for directory→memory requests; the analysis then
//!   finds the Figure-4 deadlock (cycle VC2 ↔ VC4).
//! * `V2` — the fix: a dedicated hardware path for the directory's
//!   memory operations; the graph is acyclic.
//!
//! Run with: `cargo run --example deadlock_hunt`

use ccsql_suite::core::depend::{protocol_dependency_table, AnalysisConfig};
use ccsql_suite::core::gen::GeneratedProtocol;
use ccsql_suite::core::report::deadlock_report;
use ccsql_suite::core::vc::VcAssignment;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gen = GeneratedProtocol::generate_default()?;
    let cfg = AnalysisConfig::default();

    for v in [VcAssignment::v0(), VcAssignment::v1(), VcAssignment::v2()] {
        let name = v.name;
        let deps = protocol_dependency_table(&gen, &v, &cfg)?;
        let rep = deadlock_report(&gen, name, &deps);
        println!("{}", rep.render());
        match name {
            "V0" => assert!(
                rep.simple_cycles > 1,
                "V0 must exhibit several deadlock cycles (got {})",
                rep.simple_cycles
            ),
            "V1" => {
                assert!(!rep.cycles.is_empty());
                let channels: Vec<String> = rep
                    .cycles
                    .iter()
                    .flat_map(|c| c.channels.iter().map(|s| s.to_string()))
                    .collect();
                assert!(
                    channels.contains(&"VC2".to_string()) && channels.contains(&"VC4".to_string()),
                    "V1's cycle is the paper's VC2/VC4 deadlock"
                );
            }
            _ => assert!(
                rep.cycles.is_empty(),
                "the dedicated path must remove every cycle"
            ),
        }
    }
    println!("History reproduced: V0 = many cycles, V1 = the Figure-4 VC2/VC4 cycle, V2 = clean.");
    Ok(())
}
