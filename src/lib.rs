//! # `ccsql-suite` — facade crate
//!
//! Re-exports the whole reproduction of *Subramaniam, "Early Error
//! Detection in Industrial Strength Cache Coherence Protocols Using
//! SQL", IPPS 2003* so the repository-level examples and integration
//! tests can span every crate:
//!
//! * [`relalg`] — the from-scratch relational engine (tables, SQL
//!   subset, finite-domain constraint solver);
//! * [`protocol`] — the ASURA-style protocol: 8 controller
//!   specifications as column tables + column constraints;
//! * [`core`] — table generation, the SQL invariant suite, the
//!   virtual-channel deadlock analysis, and the hardware mapping;
//! * [`sim`] — the table-driven multiprocessor simulator;
//! * [`mc`] — the Murphi-style explicit-state model checker baseline;
//! * [`obs`] — the dependency-free tracing/metrics layer shared by all
//!   of the above (see DESIGN.md § Observability).

pub use ccsql as core;
pub use ccsql_mc as mc;
pub use ccsql_obs as obs;
pub use ccsql_protocol as protocol;
pub use ccsql_relalg as relalg;
pub use ccsql_sim as sim;
