//! System-level property tests: for arbitrary seeds and workload
//! shapes, the debugged tables drive a machine that (with the fixed
//! channel assignment) always drains and always stays coherent.
//!
//! The proptest sweeps are gated behind `--features slow-tests`
//! (proptest is an external dependency the offline build environment
//! cannot resolve), but the failure cases proptest discovered are
//! promoted below to plain always-on unit tests so the default build
//! keeps replaying them forever.

use ccsql_suite::core::gen::GeneratedProtocol;
use ccsql_suite::protocol::topology::NodeId;
use ccsql_suite::sim::{Mix, Outcome, Schedule, Sim, SimConfig, Workload};
use std::sync::OnceLock;

fn generated() -> &'static GeneratedProtocol {
    static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
    GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
}

fn drains_coherently(seed: u64, quads: usize, write_pct: u32, addrs: u32) {
    let cfg = SimConfig {
        quads,
        nodes_per_quad: 2,
        vc_capacity: 2,
        dedicated_mem_path: true,
        schedule: Schedule::Random(seed),
        max_steps: 3_000_000,
    };
    let nodes: Vec<NodeId> = (0..quads)
        .flat_map(|q| (0..2).map(move |n| NodeId::new(q, n)))
        .collect();
    let mix = Mix {
        write: write_pct,
        evict: 10,
        flush: 5,
        io: 5,
    };
    let wl = Workload::random(&nodes, 60, addrs, mix, seed);
    let mut sim = Sim::new(generated(), cfg, wl);
    let out = sim.run().unwrap();
    assert!(matches!(out, Outcome::Quiescent), "seed {seed}: {out:?}");
    sim.audit().unwrap();
}

// Promoted from tests/prop_system.proptest-regressions: proptest once
// shrank a failing case of `any_seed_drains_coherently_with_the_fix`
// to `seed = 5709` (all other parameters at their minima). Replay it
// on every build, at the shrunk shape and across the parameter grid
// the sweep would have explored around it.
#[test]
fn regression_seed_5709_shrunk_case() {
    drains_coherently(5709, 1, 0, 2);
}

#[test]
fn regression_seed_5709_parameter_grid() {
    for quads in [1usize, 2] {
        for write_pct in [0u32, 30, 59] {
            for addrs in [2u32, 9] {
                drains_coherently(5709, quads, write_pct, addrs);
            }
        }
    }
}

#[test]
fn regression_seed_5709_capacity_one() {
    // The second property at the same seed: the statically-verified
    // channel assignment stays deadlock-free even at capacity 1
    // (1 node per quad, per the structural sizing rule).
    let seed = 5709;
    let cfg = SimConfig {
        quads: 3,
        nodes_per_quad: 1,
        vc_capacity: 1,
        dedicated_mem_path: true,
        schedule: Schedule::Random(seed),
        max_steps: 3_000_000,
    };
    let nodes: Vec<NodeId> = (0..3).map(|q| NodeId::new(q, 0)).collect();
    let wl = Workload::random(&nodes, 40, 6, Mix::default(), seed);
    let mut sim = Sim::new(generated(), cfg, wl);
    let out = sim.run().unwrap();
    assert!(
        !out.is_deadlock(),
        "statically-verified assignment deadlocked: {out:?}"
    );
    assert!(matches!(out, Outcome::Quiescent), "{out:?}");
    sim.audit().unwrap();
}

// Drift guard for the promotion rule above: every shrunk case the
// proptest corpus records must have a named always-on replay in this
// file. If a future `--features slow-tests` run appends a new
// `cc … # shrinks to seed = N` line, this test fails until the seed is
// promoted to a `regression_seed_N_*` unit test.
#[test]
fn every_recorded_regression_seed_is_promoted() {
    let corpus = include_str!("prop_system.proptest-regressions");
    let this_file = include_str!("prop_system.rs");
    let mut seeds = 0usize;
    for line in corpus.lines().filter(|l| l.starts_with("cc ")) {
        let seed = line
            .split("seed = ")
            .nth(1)
            .and_then(|s| s.split(|c: char| !c.is_ascii_digit()).next())
            .filter(|s| !s.is_empty())
            .unwrap_or_else(|| panic!("unparseable regression corpus line: {line}"));
        assert!(
            this_file.contains(&format!("fn regression_seed_{seed}")),
            "corpus records shrunk seed {seed} but no regression_seed_{seed}_* \
             test promotes it — add an always-on replay"
        );
        seeds += 1;
    }
    assert!(seeds > 0, "regression corpus lists no shrunk cases");
}

#[cfg(feature = "slow-tests")]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // Each case runs a full simulation; keep the count moderate.
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn any_seed_drains_coherently_with_the_fix(
            seed in any::<u64>(),
            quads in 1usize..3,
            write_pct in 0u32..60,
            addrs in 2u32..10,
        ) {
            drains_coherently(seed, quads, write_pct, addrs);
        }

        #[test]
        fn capacity_one_is_still_deadlock_free_with_the_fix(seed in any::<u64>()) {
            // The static analysis says V2's dependency graph is acyclic, so
            // no channel capacity can deadlock the machine — provided the
            // structural sizing rule holds (snoop buffers hold one slot per
            // node in the quad, so capacity 1 requires 1 node per quad).
            let cfg = SimConfig {
                quads: 3,
                nodes_per_quad: 1,
                vc_capacity: 1,
                dedicated_mem_path: true,
                schedule: Schedule::Random(seed),
                max_steps: 3_000_000,
            };
            let nodes: Vec<NodeId> = (0..3).map(|q| NodeId::new(q, 0)).collect();
            let wl = Workload::random(&nodes, 40, 6, Mix::default(), seed);
            let mut sim = Sim::new(generated(), cfg, wl);
            let out = sim.run().unwrap();
            prop_assert!(
                !out.is_deadlock(),
                "statically-verified assignment deadlocked: {out:?}"
            );
            prop_assert!(matches!(out, Outcome::Quiescent), "{out:?}");
            sim.audit().unwrap();
        }
    }
}
