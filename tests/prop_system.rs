//! System-level property tests: for arbitrary seeds and workload
//! shapes, the debugged tables drive a machine that (with the fixed
//! channel assignment) always drains and always stays coherent.

// Gated out of the offline default build: proptest is an external
// dependency the build environment cannot resolve. Restore the
// proptest dev-dependency and run with `--features slow-tests` to
// re-enable.
#![cfg(feature = "slow-tests")]

use ccsql_suite::core::gen::GeneratedProtocol;
use ccsql_suite::protocol::topology::NodeId;
use ccsql_suite::sim::{Mix, Outcome, Schedule, Sim, SimConfig, Workload};
use proptest::prelude::*;
use std::sync::OnceLock;

fn generated() -> &'static GeneratedProtocol {
    static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
    GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
}

proptest! {
    // Each case runs a full simulation; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn any_seed_drains_coherently_with_the_fix(
        seed in any::<u64>(),
        quads in 1usize..3,
        write_pct in 0u32..60,
        addrs in 2u32..10,
    ) {
        let cfg = SimConfig {
            quads,
            nodes_per_quad: 2,
            vc_capacity: 2,
            dedicated_mem_path: true,
            schedule: Schedule::Random(seed),
            max_steps: 3_000_000,
        };
        let nodes: Vec<NodeId> = (0..quads)
            .flat_map(|q| (0..2).map(move |n| NodeId::new(q, n)))
            .collect();
        let mix = Mix { write: write_pct, evict: 10, flush: 5, io: 5 };
        let wl = Workload::random(&nodes, 60, addrs, mix, seed);
        let mut sim = Sim::new(generated(), cfg, wl);
        let out = sim.run().unwrap();
        prop_assert!(matches!(out, Outcome::Quiescent), "{out:?}");
        sim.audit().unwrap();
    }

    #[test]
    fn capacity_one_is_still_deadlock_free_with_the_fix(seed in any::<u64>()) {
        // The static analysis says V2's dependency graph is acyclic, so
        // no channel capacity can deadlock the machine — provided the
        // structural sizing rule holds (snoop buffers hold one slot per
        // node in the quad, so capacity 1 requires 1 node per quad).
        let cfg = SimConfig {
            quads: 3,
            nodes_per_quad: 1,
            vc_capacity: 1,
            dedicated_mem_path: true,
            schedule: Schedule::Random(seed),
            max_steps: 3_000_000,
        };
        let nodes: Vec<NodeId> = (0..3).map(|q| NodeId::new(q, 0)).collect();
        let wl = Workload::random(&nodes, 40, 6, Mix::default(), seed);
        let mut sim = Sim::new(generated(), cfg, wl);
        let out = sim.run().unwrap();
        prop_assert!(
            !out.is_deadlock(),
            "statically-verified assignment deadlocked: {out:?}"
        );
        prop_assert!(matches!(out, Outcome::Quiescent), "{out:?}");
        sim.audit().unwrap();
    }
}
