//! The protocol-revision ablation: the paper's team "went through
//! several revisions" with the tables regenerated, re-checked and
//! re-analysed each time. This test drives one realistic revision —
//! direct cache-to-cache ownership transfer for `readex@MESI` — through
//! the whole methodology: regenerate, diff, re-check invariants,
//! re-run the deadlock analysis, and measure the effect dynamically.

use ccsql_suite::core::depend::{protocol_dependency_table, AnalysisConfig};
use ccsql_suite::core::diff::TableDiff;
use ccsql_suite::core::gen::GeneratedProtocol;
use ccsql_suite::core::invariants;
use ccsql_suite::core::vc::VcAssignment;
use ccsql_suite::core::vcg::Vcg;
use ccsql_suite::core::walker;
use ccsql_suite::protocol::directory::OwnerTransfer;
use ccsql_suite::protocol::topology::NodeId;
use ccsql_suite::relalg::{GenMode, Sym};
use ccsql_suite::sim::{Outcome, Pattern, Schedule, Sim, SimConfig, Workload};
use std::sync::OnceLock;

fn base() -> &'static GeneratedProtocol {
    static G: OnceLock<GeneratedProtocol> = OnceLock::new();
    G.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
}

fn direct() -> &'static GeneratedProtocol {
    static G: OnceLock<GeneratedProtocol> = OnceLock::new();
    G.get_or_init(|| {
        GeneratedProtocol::generate_variant(OwnerTransfer::Direct, GenMode::Incremental).unwrap()
    })
}

#[test]
fn revision_diff_is_exactly_the_transfer_path() {
    let old = base().table("D").unwrap();
    let new = direct().table("D").unwrap();
    let keys: Vec<Sym> = ["inmsg", "dirst", "dirpv", "bdirst", "bdirpv"]
        .iter()
        .map(|s| Sym::intern(s))
        .collect();
    let d = TableDiff::diff(old, new, &keys).unwrap();
    // The revision swaps two transitions: readex@MESI's snoop and the
    // Busy-m response handler.
    assert_eq!(d.changed.len(), 1, "{}", d.render(old.schema()));
    assert_eq!(d.added.len(), 1, "{}", d.render(old.schema()));
    assert_eq!(d.removed.len(), 1, "{}", d.render(old.schema()));
    let rendered = d.render(old.schema());
    assert!(rendered.contains("remmsg: sinv → srdex"), "{rendered}");
    assert!(rendered.contains("+ inmsg=xferdone"), "{rendered}");
    assert!(rendered.contains("- inmsg=idone"), "{rendered}");
}

#[test]
fn revision_satisfies_the_invariant_suite_and_liveness() {
    let mut gen =
        GeneratedProtocol::generate_variant(OwnerTransfer::Direct, GenMode::Incremental).unwrap();
    let results = invariants::check_all(&mut gen.db).unwrap();
    assert!(
        invariants::failures(&results).is_empty(),
        "{:?}",
        invariants::failures(&results)
    );
    let graph = ccsql_suite::core::liveness::BusyGraph::build(
        gen.table("D").unwrap(),
        &ccsql_suite::protocol::states::busy_states(),
    )
    .unwrap();
    assert!(graph.ok(), "{}", graph.render());
}

#[test]
fn revision_removes_the_idone_to_mread_dependency() {
    // The Figure-4 R2 row disappears in the Direct design, but the
    // VC2/VC4 cycle survives on V1 through the mwrite paths — the
    // dedicated-path fix remains necessary, and V2 remains clean.
    let v1 = VcAssignment::v1();
    let cfg = AnalysisConfig::default();
    let base_t = protocol_dependency_table(base(), &v1, &cfg).unwrap();
    let dir_t = protocol_dependency_table(direct(), &v1, &cfg).unwrap();
    let has_r2 = |t: &ccsql_suite::core::depend::DependencyTable| {
        t.rows
            .iter()
            .any(|r| r.input.msg.as_str() == "idone" && r.output.msg.as_str() == "mread")
    };
    assert!(has_r2(&base_t));
    assert!(!has_r2(&dir_t));
    assert!(
        !Vcg::build(&dir_t).is_acyclic(),
        "V1 still cyclic via mwrite"
    );
    let v2_t = protocol_dependency_table(direct(), &VcAssignment::v2(), &cfg).unwrap();
    assert!(Vcg::build(&v2_t).is_acyclic());
}

#[test]
fn revision_shortens_the_modified_readex_walk() {
    let w_base = walker::walk(base(), "readex", "MESI", 1).unwrap();
    let w_dir = walker::walk(direct(), "readex", "MESI", 1).unwrap();
    assert!(w_base.completed && w_dir.completed);
    // ViaMemory: readex, sinv, idone, mread, data, edata = 6 arcs;
    // Direct: readex, srdex, xferdone, edata = 4 arcs.
    assert!(
        w_dir.arcs.len() < w_base.arcs.len(),
        "direct {} vs base {}\n{}\n{}",
        w_dir.arcs.len(),
        w_base.arcs.len(),
        w_dir.render(),
        w_base.render()
    );
    assert!(w_dir.arcs.iter().any(|a| a.msg.as_str() == "xferdone"));
}

#[test]
fn revision_speeds_up_migratory_sharing_dynamically() {
    let run = |gen: &GeneratedProtocol, seed: u64| {
        let cfg = SimConfig {
            quads: 2,
            nodes_per_quad: 2,
            vc_capacity: 2,
            dedicated_mem_path: true,
            schedule: Schedule::Random(seed),
            max_steps: 2_000_000,
        };
        let nodes: Vec<NodeId> = (0..2)
            .flat_map(|q| (0..2).map(move |n| NodeId::new(q, n)))
            .collect();
        let wl = Workload::pattern(&nodes, Pattern::Migratory, 60, seed);
        let mut sim = Sim::new(gen, cfg, wl);
        let out = sim.run().unwrap();
        assert!(matches!(out, Outcome::Quiescent), "{out:?}");
        sim.audit().unwrap();
        let lat = sim.latency_report();
        let (n, total) = lat
            .iter()
            .fold((0u64, 0u64), |(n, t), (_, a)| (n + a.count, t + a.total));
        (sim.stats.msgs, total as f64 / n as f64)
    };
    // Average over several schedule/workload seeds: any single seed's
    // latency comparison is noise-dominated (the schedule shuffle can
    // mask the saved memory round trip).
    let seeds = [1u64, 2, 3, 5, 8];
    let mut msgs_base = 0u64;
    let mut msgs_dir = 0u64;
    let mut lat_base = 0.0f64;
    let mut lat_dir = 0.0f64;
    for &s in &seeds {
        let (m, l) = run(base(), s);
        msgs_base += m;
        lat_base += l;
        let (m, l) = run(direct(), s);
        msgs_dir += m;
        lat_dir += l;
    }
    // Fewer messages for ownership migration (no mread/data round trip).
    assert!(
        msgs_dir < msgs_base,
        "messages: direct {msgs_dir} vs base {msgs_base}"
    );
    assert!(
        lat_dir <= lat_base,
        "latency: direct {lat_dir:.2} vs base {lat_base:.2}"
    );
}
