//! System-level tests of the observability layer: the simulator's
//! metric counters must be a pure function of the seeded configuration,
//! and the disabled-observability hot path must stay close to free.

use ccsql_suite::core::gen::GeneratedProtocol;
use ccsql_suite::mc::{explore, McOutcome, Model};
use ccsql_suite::protocol::topology::NodeId;
use ccsql_suite::sim::{Mix, Outcome, Schedule, Sim, SimConfig, Workload};
use std::sync::OnceLock;
use std::time::Instant;

fn generated() -> &'static GeneratedProtocol {
    static G: OnceLock<GeneratedProtocol> = OnceLock::new();
    G.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
}

fn run_seeded(seed: u64) -> Vec<(String, u64)> {
    let cfg = SimConfig {
        quads: 2,
        nodes_per_quad: 2,
        vc_capacity: 2,
        dedicated_mem_path: true,
        schedule: Schedule::Random(seed),
        max_steps: 1_000_000,
    };
    let nodes: Vec<NodeId> = (0..2)
        .flat_map(|q| (0..2).map(move |n| NodeId::new(q, n)))
        .collect();
    let wl = Workload::random(&nodes, 60, 16, Mix::default(), seed);
    let mut sim = Sim::new(generated(), cfg, wl);
    sim.enable_trace_with_cap(256);
    let out = sim.run().unwrap();
    assert!(matches!(out, Outcome::Quiescent), "{out:?}");
    sim.metrics().snapshot().counters()
}

#[test]
fn sim_counters_are_deterministic_across_identical_runs() {
    // Two runs with the same seed and configuration must produce
    // byte-identical counter snapshots (counters carry no wall-clock):
    // the splitmix64 schedule/workload PRNG is the only randomness.
    let a = run_seeded(7);
    let b = run_seeded(7);
    assert!(!a.is_empty());
    assert!(a.iter().any(|(n, _)| n == "sim.steps"));
    assert!(a.iter().any(|(n, _)| n == "sim.trace_events"));
    assert_eq!(a, b);
    // And a different seed must actually change something.
    let c = run_seeded(8);
    assert_ne!(a, c);
}

#[test]
#[ignore = "timing test — run manually with `cargo test -- --ignored`"]
fn mc_disabled_observability_overhead_is_small() {
    // The explorer's obs hook is a single relaxed atomic load per run
    // (aggregates are recorded at the end, not per transition). The
    // design target is ≤5% hot-loop overhead when disabled; the
    // assertion is relaxed to 25% because wall-clock comparisons on
    // shared machines are noisy.
    let m = Model {
        nodes: 3,
        quota: 2,
        resp_depth: 2,
    };
    let time_runs = |n: usize| {
        let mut best = f64::INFINITY;
        for _ in 0..n {
            let t = Instant::now();
            let (out, _) = explore(&m, 10_000_000);
            assert_eq!(out, McOutcome::Verified);
            best = best.min(t.elapsed().as_secs_f64());
        }
        best
    };
    ccsql_suite::obs::set_enabled(false);
    let disabled = time_runs(3);
    ccsql_suite::obs::set_enabled(true);
    let enabled = time_runs(3);
    ccsql_suite::obs::set_enabled(false);
    assert!(
        disabled <= enabled * 1.25,
        "disabled {disabled:.4}s vs enabled {enabled:.4}s"
    );
}
