//! Golden tests pinning the concrete artifacts the paper prints:
//! Figure 1 (message classes), Figure 3 (the readex table), the Figure 4
//! rows R1/R2/R2′/R3, and the headline numbers of sections 3–6.

use ccsql_suite::core::depend::{
    controller_dependency_rows, protocol_dependency_table, AnalysisConfig,
};
use ccsql_suite::core::gen::GeneratedProtocol;
use ccsql_suite::core::hwmap::HwMapping;
use ccsql_suite::core::invariants;
use ccsql_suite::core::vc::VcAssignment;
use ccsql_suite::core::vcg::Vcg;
use ccsql_suite::protocol::directory;
use ccsql_suite::protocol::messages;
use ccsql_suite::protocol::topology::QuadPlacement;
use ccsql_suite::relalg::{report, GenMode};
use std::sync::OnceLock;

fn generated() -> &'static GeneratedProtocol {
    static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
    GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
}

#[test]
fn fig1_about_fifty_messages_with_request_response_split() {
    assert!((45..=55).contains(&messages::MESSAGES.len()));
    // The messages the paper names all exist with the right class.
    for (name, req) in [
        ("readex", true),
        ("wb", true),
        ("sinv", true),
        ("mread", true),
        ("Dfdback", true),
        ("data", false),
        ("idone", false),
        ("compl", false),
        ("retry", false),
    ] {
        assert_eq!(messages::is_request(name), req, "{name}");
    }
}

#[test]
fn fig3_readex_table_golden() {
    let (rel, _) = directory::fig3_spec()
        .generate(GenMode::Incremental, &GeneratedProtocol::context())
        .unwrap();
    let golden = "\
inmsg,dirst,dirpv,locmsg,remmsg,memmsg,nxtdirst,nxtdirpv
data,Busy-d,zero,data,NULL,NULL,MESI,repl
data,Busy-sd,gone,data,NULL,NULL,Busy-s,NULL
data,Busy-sd,one,data,NULL,NULL,Busy-s,NULL
idone,Busy-s,gone,NULL,NULL,NULL,NULL,dec
idone,Busy-s,one,compl,NULL,NULL,MESI,repl
idone,Busy-sd,gone,NULL,NULL,NULL,NULL,dec
idone,Busy-sd,one,NULL,NULL,NULL,Busy-d,dec
readex,I,zero,NULL,NULL,mread,Busy-d,NULL
readex,SI,gone,NULL,sinv,mread,Busy-sd,repl
readex,SI,one,NULL,sinv,mread,Busy-sd,repl
";
    assert_eq!(report::csv(&rel.sorted()), golden);
}

#[test]
fn section3_table_d_headline_numbers() {
    let gen = generated();
    let d = gen.table("D").unwrap();
    // "This table is made of 30 columns and 500 rows and includes
    // around 40 Busy states."
    assert_eq!(d.arity(), 30);
    assert!((450..=550).contains(&d.len()), "rows: {}", d.len());
    let busy: std::collections::HashSet<_> = d
        .column_values("bdirst")
        .unwrap()
        .into_iter()
        .filter(|v| !v.is_null() && v.to_string() != "I")
        .collect();
    assert_eq!(busy.len(), 40);
}

#[test]
fn section4_about_fifty_invariants_all_hold() {
    let suite = invariants::all_invariants();
    assert!((50..=60).contains(&suite.len()));
    let mut gen = GeneratedProtocol::generate_default().unwrap();
    let results = invariants::check_all(&mut gen.db).unwrap();
    assert!(invariants::failures(&results).is_empty());
}

#[test]
fn fig4_rows_r1_r2_r2prime_r3() {
    let gen = generated();
    let v1 = VcAssignment::v1();

    // R1 in the memory controller dependency table (exact placement).
    let m_rows = controller_dependency_rows(
        gen.controller("M").unwrap(),
        gen.table("M").unwrap(),
        &v1,
        QuadPlacement::AllDistinct,
    );
    assert!(m_rows.iter().any(|r| r.input.msg.as_str() == "wb"
        && r.input.vc.as_str() == "VC4"
        && r.output.msg.as_str() == "compl"
        && r.output.vc.as_str() == "VC2"));

    // R2 in the directory controller dependency table.
    let d_rows = controller_dependency_rows(
        gen.controller("D").unwrap(),
        gen.table("D").unwrap(),
        &v1,
        QuadPlacement::AllDistinct,
    );
    assert!(d_rows.iter().any(|r| r.input.msg.as_str() == "idone"
        && r.input.src.as_str() == "remote"
        && r.output.msg.as_str() == "mread"
        && r.output.vc.as_str() == "VC4"));

    // R2′ under L≠H=R: the idone source canonicalises to home.
    let d_rows_hr = controller_dependency_rows(
        gen.controller("D").unwrap(),
        gen.table("D").unwrap(),
        &v1,
        QuadPlacement::HomeRemote,
    );
    assert!(d_rows_hr.iter().any(|r| r.input.msg.as_str() == "idone"
        && r.input.src.as_str() == "home"
        && r.output.msg.as_str() == "mread"));

    // R3 — the composed (wb, …, VC4, mread, …, VC4) row — and the cycle.
    let table = protocol_dependency_table(gen, &v1, &AnalysisConfig::default()).unwrap();
    assert!(table.rows.iter().any(|r| r.input.msg.as_str() == "wb"
        && r.input.vc.as_str() == "VC4"
        && r.output.msg.as_str() == "mread"
        && r.output.vc.as_str() == "VC4"
        && r.placement == QuadPlacement::HomeRemote));
    let vcg = Vcg::build(&table);
    assert!(vcg.has_edge("VC2", "VC4"));
    assert!(vcg.has_edge("VC4", "VC2"));
    let cycles = vcg.cycles();
    assert_eq!(cycles.len(), 1);
    let chans: Vec<&str> = cycles[0].channels.iter().map(|c| c.as_str()).collect();
    assert_eq!(chans, ["VC2", "VC4"]);
}

#[test]
fn section5_nine_tables_and_reconstruction() {
    let gen = generated();
    let mapping = HwMapping::build(gen).unwrap();
    assert_eq!(mapping.impl_tables.len(), 9);
    // ED adds exactly Qstatus, Dqstatus and Fdback.
    assert_eq!(mapping.ed.arity(), 33);
    assert!(mapping.check(gen.table("D").unwrap()).unwrap().ok());
    // Dfdback participates as an implementation-defined request.
    let inmsg = mapping.ed.schema().index_of_str("inmsg").unwrap();
    assert!(mapping.ed.rows().any(|r| r[inmsg].to_string() == "Dfdback"));
}

#[test]
fn section6_eight_controller_tables() {
    let gen = generated();
    assert_eq!(gen.spec.controllers.len(), 8);
    for c in &gen.spec.controllers {
        assert!(!gen.table(c.name).unwrap().is_empty());
    }
}

#[test]
fn footnote2_transitive_closure_inflates_spurious_cycles() {
    // "Our first attempt … was to do a transitive closure but we
    // abandoned this due to the excessive number of spurious cycles."
    let gen = generated();
    let single =
        protocol_dependency_table(gen, &VcAssignment::v0(), &AnalysisConfig::default()).unwrap();
    let closure = protocol_dependency_table(
        gen,
        &VcAssignment::v0(),
        &AnalysisConfig {
            transitive_closure: true,
            ..AnalysisConfig::default()
        },
    )
    .unwrap();
    assert!(closure.rows.len() > single.rows.len());
    let sc_single = Vcg::build(&single).simple_cycles(1000).len();
    let sc_closure = Vcg::build(&closure).simple_cycles(1000).len();
    assert!(
        sc_closure >= sc_single,
        "closure: {sc_closure} vs single: {sc_single}"
    );
}

#[test]
fn placement_relaxation_is_load_bearing() {
    // Without the quad-placement relaxation (exact matching only, all
    // quads distinct) the V0 home-sharing cycles disappear — the
    // relaxation is what finds them.
    let gen = generated();
    let exact =
        protocol_dependency_table(gen, &VcAssignment::v0(), &AnalysisConfig::exact_only()).unwrap();
    let full =
        protocol_dependency_table(gen, &VcAssignment::v0(), &AnalysisConfig::default()).unwrap();
    let c_exact = Vcg::build(&exact).simple_cycles(1000).len();
    let c_full = Vcg::build(&full).simple_cycles(1000).len();
    assert!(
        c_full > c_exact,
        "placements must add cycles: exact {c_exact}, full {c_full}"
    );
}
