//! The protocol-zoo matrix suite: every spec pack under `specs/` runs
//! through the full pipeline (lint → compiled/interpreted solve diff →
//! flows/VCG → spec-machine mc with symmetry/thread identity → seeded
//! sim), via the same `ccsql zoo` entry point `scripts/verify.sh`
//! gates on. The suite asserts the matrix itself (completeness, clean
//! packs pass, seeded-bug packs are rejected) and then drills into the
//! per-protocol behaviour the summary line alone would hide.

use std::collections::BTreeMap;

fn argv(cmd: &str) -> Vec<String> {
    cmd.split_whitespace().map(str::to_string).collect()
}

fn spec_dir() -> String {
    format!("{}/specs", env!("CARGO_MANIFEST_DIR"))
}

fn spec(name: &str) -> String {
    format!("{}/{name}.ccsql", spec_dir())
}

/// All spec-pack stems under `specs/`, sorted.
fn all_packs() -> Vec<String> {
    let mut packs: Vec<String> = std::fs::read_dir(spec_dir())
        .expect("specs/ exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ccsql"))
        .filter_map(|p| p.file_stem().map(|s| s.to_string_lossy().into_owned()))
        .collect();
    packs.sort();
    packs
}

/// Parse the zoo JSONL verdict table into (protocol → stage → verdict).
fn verdicts(out: &str) -> BTreeMap<String, BTreeMap<String, String>> {
    let field = |line: &str, key: &str| -> Option<String> {
        let tag = format!("\"{key}\":\"");
        let start = line.find(&tag)? + tag.len();
        line[start..].split('"').next().map(str::to_string)
    };
    let mut map: BTreeMap<String, BTreeMap<String, String>> = BTreeMap::new();
    for line in out.lines().filter(|l| l.starts_with('{')) {
        let (Some(p), Some(s), Some(v)) = (
            field(line, "protocol"),
            field(line, "stage"),
            field(line, "verdict"),
        ) else {
            panic!("malformed zoo JSONL line: {line}");
        };
        map.entry(p).or_default().insert(s, v);
    }
    map
}

fn run_zoo(extra: &str) -> String {
    ccsql_cli::run(&argv(&format!("zoo {} {extra}", spec_dir())))
        .expect("zoo expectations must hold")
}

const STAGES: [&str; 5] = ["lint", "solve", "flows", "specmc", "specsim"];
const CLEAN: [&str; 3] = ["fig3", "bedrock_moesif", "phase_priority"];

#[test]
fn the_matrix_covers_every_spec_pack_and_every_stage() {
    let out = run_zoo("--quick");
    let v = verdicts(&out);
    for pack in all_packs() {
        let stages = v
            .get(&pack)
            .unwrap_or_else(|| panic!("spec pack {pack} missing from the zoo matrix"));
        for stage in STAGES {
            assert!(
                stages.contains_key(stage),
                "{pack} has no {stage} verdict in the matrix"
            );
        }
    }
    assert_eq!(v.len(), all_packs().len(), "matrix lists unknown packs");
    assert!(out.contains("expectations met"), "{out}");
}

#[test]
fn clean_protocols_pass_every_stage_and_seeded_bugs_are_rejected() {
    let out = run_zoo("--quick");
    let v = verdicts(&out);
    for pack in CLEAN {
        for stage in STAGES {
            assert_eq!(
                v[pack][stage], "pass",
                "clean pack {pack} does not pass {stage}:\n{out}"
            );
        }
    }
    for pack in all_packs() {
        if !pack.ends_with("_buggy") && !pack.ends_with("_flowbug") {
            continue;
        }
        assert!(
            v[&pack].values().any(|verdict| verdict == "fail"),
            "seeded-bug pack {pack} was not rejected by any stage:\n{out}"
        );
    }
    // The specific seeded bugs land where they were designed to land:
    // the MOESIF one is invisible to lint and only the machine finds
    // it; the phase-priority one is a lint-level nondeterminism.
    assert_eq!(v["bedrock_moesif_buggy"]["lint"], "pass");
    assert_eq!(v["bedrock_moesif_buggy"]["specmc"], "fail");
    assert_eq!(v["phase_priority_buggy"]["lint"], "fail");
    assert_eq!(v["phase_priority_buggy"]["solve"], "fail");
}

#[test]
fn the_zoo_report_is_deterministic_across_runs_and_tiers() {
    let a = run_zoo("--quick");
    let b = run_zoo("--quick");
    assert_eq!(a, b, "zoo --quick is not byte-deterministic");
    let full_a = run_zoo("");
    let full_b = run_zoo("");
    assert_eq!(full_a, full_b, "zoo (full tier) is not byte-deterministic");
}

#[test]
fn the_full_tier_reaches_the_rows_quick_cannot() {
    // Two agents cannot occupy the phase-priority reservation and
    // bounce a third request off it at the same time; three can. The
    // full tier must therefore reach full row coverage where the quick
    // tier reports a hole — the matrix watches analysis depth, not
    // just verdicts.
    let quick = run_zoo("--quick");
    let full = run_zoo("");
    let grab = |out: &str| -> String {
        out.lines()
            .find(|l| l.contains("\"protocol\":\"phase_priority\"") && l.contains("\"specmc\""))
            .unwrap_or_else(|| panic!("no phase_priority specmc line in:\n{out}"))
            .to_string()
    };
    assert!(grab(&quick).contains("rows 20/36"), "{quick}");
    assert!(grab(&full).contains("rows 36/36"), "{full}");
}

#[test]
fn spec_mc_runs_each_clean_protocol_from_the_cli() {
    for pack in CLEAN {
        let out = ccsql_cli::run(&argv(&format!("mc --spec {} --nodes 2", spec(pack))))
            .unwrap_or_else(|e| panic!("mc --spec {pack} rejected a clean protocol:\n{e}"));
        assert!(out.contains("specmc: verified"), "{pack}: {out}");
        // JSON rendering carries the verdict and the orbit accounting.
        let json =
            ccsql_cli::run(&argv(&format!("mc --spec {} --nodes 2 --json", spec(pack)))).unwrap();
        assert!(json.contains("\"verdict\":\"verified\""), "{pack}: {json}");
        assert!(json.contains("\"orbit_states\":"), "{pack}: {json}");
    }
}

#[test]
fn spec_mc_rejects_the_undrainable_moesif_variant_with_a_counterexample() {
    let err = ccsql_cli::run(&argv(&format!(
        "mc --spec {} --nodes 2",
        spec("bedrock_moesif_buggy")
    )))
    .expect_err("the seeded MOESIF bug must be rejected");
    assert!(err.contains("undrainable"), "{err}");
    assert!(err.contains("agent"), "counterexample path missing: {err}");
}

#[test]
fn spec_sim_walks_each_clean_protocol_deterministically() {
    for pack in CLEAN {
        let cmd = format!("sim --spec {} --seed 7 --ops 3000", spec(pack));
        let a = ccsql_cli::run(&argv(&cmd)).unwrap();
        let b = ccsql_cli::run(&argv(&cmd)).unwrap();
        assert_eq!(a, b, "{pack}: sim --spec is not deterministic");
        assert!(a.contains("completion(s)"), "{pack}: {a}");
        assert!(!a.contains("STUCK"), "{pack}: {a}");
    }
}

#[test]
fn zoo_rejects_a_directory_with_no_packs() {
    let empty = format!("{}/target", env!("CARGO_MANIFEST_DIR"));
    let err = ccsql_cli::run(&argv(&format!("zoo {empty}"))).unwrap_err();
    assert!(err.contains("no .ccsql spec packs"), "{err}");
}
