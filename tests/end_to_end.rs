//! End-to-end integration: the paper's complete flow across all crates
//! — specify → generate → statically debug → map to hardware → execute.

use ccsql_suite::core::depend::{protocol_dependency_table, AnalysisConfig};
use ccsql_suite::core::gen::GeneratedProtocol;
use ccsql_suite::core::hwmap::HwMapping;
use ccsql_suite::core::invariants;
use ccsql_suite::core::report::deadlock_report;
use ccsql_suite::core::vc::VcAssignment;
use ccsql_suite::protocol::topology::NodeId;
use ccsql_suite::sim::{Fig4, Mix, Outcome, Schedule, Sim, SimConfig, Workload};
use std::sync::OnceLock;

fn generated() -> &'static GeneratedProtocol {
    static GEN: OnceLock<GeneratedProtocol> = OnceLock::new();
    GEN.get_or_init(|| GeneratedProtocol::generate_default().unwrap())
}

#[test]
fn full_pipeline_generate_debug_map_execute() {
    let gen = generated();

    // 1. All eight tables generated; D matches the paper's shape.
    let d = gen.table("D").unwrap();
    assert_eq!(d.arity(), 30);
    assert!((430..=570).contains(&d.len()));

    // 2. Static debugging: all invariants hold, V2 is deadlock-free.
    let mut gen2 = GeneratedProtocol::generate_default().unwrap();
    let results = invariants::check_all(&mut gen2.db).unwrap();
    assert!(invariants::failures(&results).is_empty());
    let deps =
        protocol_dependency_table(gen, &VcAssignment::v2(), &AnalysisConfig::default()).unwrap();
    let rep = deadlock_report(gen, "V2", &deps);
    assert!(rep.cycles.is_empty());

    // 3. Hardware mapping preserves the debugged table.
    let mapping = HwMapping::build(gen).unwrap();
    assert_eq!(mapping.impl_tables.len(), 9);
    assert!(mapping.check(d).unwrap().ok());

    // 4. The debugged tables execute coherently.
    let cfg = SimConfig {
        quads: 2,
        nodes_per_quad: 2,
        vc_capacity: 2,
        dedicated_mem_path: true,
        schedule: Schedule::Random(7),
        max_steps: 2_000_000,
    };
    let nodes: Vec<NodeId> = (0..2)
        .flat_map(|q| (0..2).map(move |n| NodeId::new(q, n)))
        .collect();
    let wl = Workload::random(&nodes, 100, 8, Mix::default(), 7);
    let mut sim = Sim::new(gen, cfg, wl);
    let out = sim.run().unwrap();
    assert!(matches!(out, Outcome::Quiescent), "{out:?}");
    sim.audit().unwrap();
}

#[test]
fn static_and_dynamic_deadlock_analyses_agree() {
    let gen = generated();
    // Static: V1 cyclic on {VC2, VC4}; V2 acyclic.
    let v1 =
        protocol_dependency_table(gen, &VcAssignment::v1(), &AnalysisConfig::default()).unwrap();
    let v1_rep = deadlock_report(gen, "V1", &v1);
    assert!(!v1_rep.cycles.is_empty());
    let v2 =
        protocol_dependency_table(gen, &VcAssignment::v2(), &AnalysisConfig::default()).unwrap();
    assert!(deadlock_report(gen, "V2", &v2).cycles.is_empty());

    // Dynamic: the same dichotomy, on the executing machine.
    let dyn_v1 = Fig4::default().replay(gen, false).unwrap();
    let Outcome::Deadlock(info) = dyn_v1 else {
        panic!("V1 machine must deadlock: {dyn_v1:?}");
    };
    // The dynamic cycle involves the statically-predicted channels.
    let static_channels: Vec<String> = v1_rep
        .cycles
        .iter()
        .flat_map(|c| c.channels.iter().map(|s| s.to_string()))
        .collect();
    for ch in &info.channels {
        assert!(
            static_channels.contains(ch),
            "dynamic channel {ch} not in static prediction {static_channels:?}"
        );
    }
    let dyn_v2 = Fig4::default().replay(gen, true).unwrap();
    assert!(matches!(dyn_v2, Outcome::Quiescent));
}

#[test]
fn deterministic_simulation_for_fixed_seed() {
    let gen = generated();
    let run = || {
        let cfg = SimConfig {
            quads: 2,
            nodes_per_quad: 2,
            vc_capacity: 2,
            dedicated_mem_path: true,
            schedule: Schedule::Random(11),
            max_steps: 2_000_000,
        };
        let nodes: Vec<NodeId> = (0..2)
            .flat_map(|q| (0..2).map(move |n| NodeId::new(q, n)))
            .collect();
        let wl = Workload::random(&nodes, 80, 8, Mix::default(), 11);
        let mut sim = Sim::new(gen, cfg, wl);
        sim.run().unwrap();
        let s = sim.stats;
        (s.steps, s.issued, s.completed, s.retries, s.msgs)
    };
    assert_eq!(run(), run(), "same seed must give identical runs");
}

#[test]
fn sql_queries_span_generated_tables() {
    let mut gen = GeneratedProtocol::generate_default().unwrap();
    // Cross-table query: every snoop D can send has a handler row in R.
    let snoops = gen
        .db
        .query("select distinct remmsg from D where not remmsg = NULL")
        .unwrap();
    for row in snoops.rows() {
        let snoop = row[0].to_string();
        let handled = gen
            .db
            .query(&format!("select inmsg from R where inmsg = \"{snoop}\""))
            .unwrap();
        assert!(!handled.is_empty(), "snoop {snoop} unhandled by RAC");
    }
    // The paper's verbatim mutual-exclusion invariant.
    let witnesses = gen
        .db
        .query(r#"select dirst, bdirst from D where not dirst = "I" and not bdirst = "I""#)
        .unwrap();
    assert!(witnesses.is_empty());
}

#[test]
fn seeded_specification_bug_is_caught_by_the_pipeline() {
    use ccsql_suite::relalg::Value;
    // Corrupt the generated D (as a designer typo would) and verify the
    // static checks catch it before "implementation".
    let mut gen = GeneratedProtocol::generate_default().unwrap();
    let d = gen.db.table("D").unwrap().clone();
    let schema = d.schema();
    let mut bad = d.clone();
    let mut row = d.row(100).to_vec();
    // A request row that silently drops the retry on a busy line.
    row[schema.index_of_str("inmsg").unwrap()] = Value::sym("readex");
    row[schema.index_of_str("bdirst").unwrap()] = Value::sym("Busy-w-m");
    row[schema.index_of_str("locmsg").unwrap()] = Value::Null;
    bad.push_row(&row).unwrap();
    gen.db.put_table("D", bad);
    let results = invariants::check_all(&mut gen.db).unwrap();
    let failed = invariants::failures(&results);
    assert!(
        failed.contains(&"D-retry-on-busy"),
        "expected the serialisation invariant to fire, got {failed:?}"
    );
}
