#!/usr/bin/env sh
# Pre-PR gate: the tier-1 build/test pass plus formatting and lint,
# all fully offline (crates/bench, the only crate with external
# dependencies, is excluded from the workspace).
#
#   sh scripts/verify.sh
#
# Every step must pass; the script stops at the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace (all crates)"
cargo test -q --workspace

echo "==> parallel equivalence (1 vs 2 vs 8 threads)"
cargo test -q -p ccsql-mc --test parallel
cargo test -q -p ccsql thread_count_does_not_change_the_table

echo "==> symmetry reduction (canon laws + on/off verdict equivalence at 2-3 nodes, 1/2/8 threads)"
cargo test -q -p ccsql-mc --test canon
cargo test -q -p ccsql-mc --test symmetry

echo "==> out-of-core determinism (shards x threads x mem-budget matrix, spill cleanup)"
cargo test -q -p ccsql-mc --test out_of_core

echo "==> ccsql bench --quick (nondeterminism gate: two runs must print identically)"
BENCH_DIR="$(mktemp -d)"
trap 'rm -rf "$BENCH_DIR"' EXIT
cargo run --quiet --release -p ccsql-cli -- bench --quick --threads 2 --out "$BENCH_DIR" \
    > "$BENCH_DIR/run1.txt"
cargo run --quiet --release -p ccsql-cli -- bench --quick --threads 2 --out "$BENCH_DIR" \
    > "$BENCH_DIR/run2.txt"
diff "$BENCH_DIR/run1.txt" "$BENCH_DIR/run2.txt"
grep -q 'identical=true' "$BENCH_DIR/run1.txt"
if grep -q 'identical=false' "$BENCH_DIR/run1.txt"; then
    echo "bench reported nondeterminism" >&2
    exit 1
fi
# The symmetry leg must have run, agreed with the full leg, and
# genuinely reduced the state count (the quick config has 4 nodes, so
# the orbit quotient must be strictly smaller than the full space —
# cmd_bench hard-fails the run into identical=false otherwise).
grep -q 'bench mc-sym:' "$BENCH_DIR/run1.txt"
SYM_STATES=$(sed -n 's/.*mc-sym:.* states=\([0-9]*\) .*/\1/p' "$BENCH_DIR/run1.txt")
FULL_STATES=$(sed -n 's/^bench mc:.* states=\([0-9]*\) .*/\1/p' "$BENCH_DIR/run1.txt")
if [ "$SYM_STATES" -ge "$FULL_STATES" ]; then
    echo "symmetry did not reduce the state count ($SYM_STATES >= $FULL_STATES)" >&2
    exit 1
fi
# The out-of-core leg must have spilled for real AND kept the
# all-inclusive resident peak under its memory budget.
grep -q 'bench mc-ooc:' "$BENCH_DIR/run1.txt"
grep -q 'spilled=true' "$BENCH_DIR/run1.txt"
grep -q 'under_budget=true' "$BENCH_DIR/run1.txt"
grep -Eq '"ooc_spilled_bytes": *[1-9]' "$BENCH_DIR/BENCH_mc.json"
grep -Eq '"ooc_under_budget": *true' "$BENCH_DIR/BENCH_mc.json"

echo "==> forced-spill quick gate (in-memory vs out-of-core, byte-for-byte)"
# Same space, three storage shapes: fully resident, 4-shard spilled,
# 16-shard spilled. After blanking the wall-clock token and dropping
# the (intentionally nondeterministic) out-of-core stats line, all
# three outputs must be byte-identical.
cargo run --quiet --release -p ccsql-cli -- mc --nodes 3 --quota 2 --no-symmetry \
    --threads 2 > "$BENCH_DIR/mc_res.txt"
cargo run --quiet --release -p ccsql-cli -- mc --nodes 3 --quota 2 --no-symmetry \
    --threads 2 --shards 4 --mem-budget 64K > "$BENCH_DIR/mc_ooc1.txt"
cargo run --quiet --release -p ccsql-cli -- mc --nodes 3 --quota 2 --no-symmetry \
    --threads 2 --shards 16 --mem-budget 64K > "$BENCH_DIR/mc_ooc2.txt"
normalize_mc() {
    sed -e 's/ thread(s), .*$/ thread(s)/' -e '/^out-of-core:/d' "$1"
}
normalize_mc "$BENCH_DIR/mc_res.txt" > "$BENCH_DIR/mc_res.norm"
normalize_mc "$BENCH_DIR/mc_ooc1.txt" > "$BENCH_DIR/mc_ooc1.norm"
normalize_mc "$BENCH_DIR/mc_ooc2.txt" > "$BENCH_DIR/mc_ooc2.norm"
diff "$BENCH_DIR/mc_res.norm" "$BENCH_DIR/mc_ooc1.norm"
diff "$BENCH_DIR/mc_res.norm" "$BENCH_DIR/mc_ooc2.norm"
# The budgeted runs must actually have hit the disk.
grep -q '^out-of-core: ' "$BENCH_DIR/mc_ooc1.txt"
if grep -q 'spilled 0 bytes' "$BENCH_DIR/mc_ooc1.txt"; then
    echo "forced-spill run spilled nothing" >&2
    exit 1
fi

# The compiled solver must beat its own interpreted oracle (measured in
# the same bench run, both single-threaded), and the parallel leg must
# clear a 1.2x speedup wherever the host actually has >1 core.
SOLVER_JSON=$(sed -n 's/.*"solver":{\(.*\)}}.*/\1/p' "$BENCH_DIR/BENCH_depend.json")
RPS=$(printf '%s' "$SOLVER_JSON" | sed -n 's/.*"rows_per_sec_1t":\([0-9.]*\).*/\1/p')
IRPS=$(printf '%s' "$SOLVER_JSON" | sed -n 's/.*"interp_rows_per_sec":\([0-9.]*\).*/\1/p')
SPEEDUP=$(printf '%s' "$SOLVER_JSON" | sed -n 's/.*"speedup":\([0-9.]*\).*/\1/p')
HW=$(sed -n 's/.*"hardware_threads":\([0-9]*\).*/\1/p' "$BENCH_DIR/BENCH_depend.json")
awk -v c="$RPS" -v i="$IRPS" 'BEGIN { exit !(c > i) }' || {
    echo "compiled solver ($RPS rows/s) does not beat interpreted ($IRPS rows/s)" >&2
    exit 1
}
if [ "$HW" -gt 1 ]; then
    awk -v s="$SPEEDUP" 'BEGIN { exit !(s > 1.2) }' || {
        echo "solver parallel speedup $SPEEDUP <= 1.2 on a $HW-thread host" >&2
        exit 1
    }
fi

echo "==> solver differential oracle (compiled vs --no-compile, byte-for-byte, every spec)"
for spec in specs/*.ccsql; do
    rc_c=0
    rc_i=0
    cargo run --quiet --release -p ccsql-cli -- solve "$spec" --no-lint \
        > "$BENCH_DIR/solve_c.txt" || rc_c=$?
    cargo run --quiet --release -p ccsql-cli -- solve "$spec" --no-lint --no-compile \
        > "$BENCH_DIR/solve_i.txt" || rc_i=$?
    if [ "$rc_c" -ne "$rc_i" ]; then
        echo "solve exit codes differ for $spec (compiled=$rc_c interpreted=$rc_i)" >&2
        exit 1
    fi
    diff "$BENCH_DIR/solve_c.txt" "$BENCH_DIR/solve_i.txt" || {
        echo "compiled and interpreted solves differ for $spec" >&2
        exit 1
    }
done

echo "==> ccsql fuzz --quick (chaos smoke: clean audit, live fault path, determinism)"
cargo run --quiet --release -p ccsql-cli -- fuzz --quick --seed 1 \
    > "$BENCH_DIR/fuzz1.txt"
cargo run --quiet --release -p ccsql-cli -- fuzz --quick --seed 1 \
    > "$BENCH_DIR/fuzz2.txt"
# Same seed twice => byte-identical JSONL (chaos is deterministic).
diff "$BENCH_DIR/fuzz1.txt" "$BENCH_DIR/fuzz2.txt"
grep -q '"type":"fuzz-summary"' "$BENCH_DIR/fuzz1.txt"
grep -q '"audit_failures":0' "$BENCH_DIR/fuzz1.txt"
if grep '"type":"fuzz-summary"' "$BENCH_DIR/fuzz1.txt" | grep -q '"faults_injected":0'; then
    echo "fuzz injected no faults — the chaos path is dead" >&2
    exit 1
fi

echo "==> ccsql profile (flight-recorder smoke: valid trace, every stage spanned, stable span structure)"
cargo run --quiet --release -p ccsql-cli -- profile specs/fig3.ccsql --quick \
    --trace-out "$BENCH_DIR/prof1.json" "--metrics=$BENCH_DIR/prof1.jsonl" \
    > "$BENCH_DIR/prof1.txt"
cargo run --quiet --release -p ccsql-cli -- profile specs/fig3.ccsql --quick \
    --trace-out "$BENCH_DIR/prof2.json" "--metrics=$BENCH_DIR/prof2.jsonl" \
    > "$BENCH_DIR/prof2.txt"
# The trace must be one well-formed JSON document with at least one span
# for every pipeline stage.
for stage in profile parse lint solve depend mc sim; do
    grep -q "\"cat\":\"$stage\"" "$BENCH_DIR/prof1.json" || {
        echo "profile trace has no $stage span" >&2
        exit 1
    }
done
grep -q '"displayTimeUnit"' "$BENCH_DIR/prof1.json"
grep -q 'throughput: solver' "$BENCH_DIR/prof1.txt"
grep -q 'memory: mc arena' "$BENCH_DIR/prof1.txt"
# Span *structure* (stage/name sequence) is a pure function of control
# flow — only the timestamps may differ between the two runs.
structure() {
    tr '{' '\n' < "$1" | sed -n 's/.*"cat":"\([a-z]*\)","name":"\([^"]*\)".*/\1 \2/p'
}
structure "$BENCH_DIR/prof1.json" > "$BENCH_DIR/spans1.txt"
structure "$BENCH_DIR/prof2.json" > "$BENCH_DIR/spans2.txt"
test -s "$BENCH_DIR/spans1.txt"
diff "$BENCH_DIR/spans1.txt" "$BENCH_DIR/spans2.txt"

echo "==> ccsql lint (clean specs must stay clean; seeded bugs must be caught)"
cargo test -q -p ccsql-lint
# bedrock_moesif_buggy is *deliberately* in the clean list: its seeded
# bug is undrainability, which only the specmc zoo stage can see.
cargo run --quiet --release -p ccsql-cli -- lint specs/fig3.ccsql \
    specs/bedrock_moesif.ccsql specs/bedrock_moesif_buggy.ccsql \
    specs/phase_priority.ccsql
cargo run --quiet --release -p ccsql-cli -- lint --protocol
for bad in specs/fig3_buggy.ccsql specs/phase_priority_buggy.ccsql; do
    if cargo run --quiet --release -p ccsql-cli -- lint "$bad"; then
        echo "lint failed to reject $bad" >&2
        exit 1
    fi
done

echo "==> ccsql flows (parameterized vs concrete vs operational deadlock verdicts, N=2..5)"
# Spec files: clean specs must be verdict-clean at every N; the seeded
# flow-bug fixture must be rejected with CCL031 naming the Figure-4
# VC2/VC4 cycle. (The per-N verdict lines cover N=2..5.)
for spec in specs/*.ccsql; do
    case "$spec" in
    *fig3_flowbug*)
        if cargo run --quiet --release -p ccsql-cli -- flows "$spec" \
            > "$BENCH_DIR/flows_bug.txt" 2>&1; then
            echo "flows failed to reject $spec" >&2
            exit 1
        fi
        grep -q 'CCL031' "$BENCH_DIR/flows_bug.txt"
        grep -q 'VC2' "$BENCH_DIR/flows_bug.txt"
        grep -q 'VC4' "$BENCH_DIR/flows_bug.txt"
        grep -q 'N=2: deadlock' "$BENCH_DIR/flows_bug.txt"
        grep -q 'N=5: deadlock' "$BENCH_DIR/flows_bug.txt"
        ;;
    *fig3_buggy*)
        # Lint fixture with the pre-PR role-less `flow` directive: flows
        # needs role slots and must say so rather than guess.
        if cargo run --quiet --release -p ccsql-cli -- flows "$spec" \
            > "$BENCH_DIR/flows_roleless.txt" 2>&1; then
            echo "flows accepted a role-less spec" >&2
            exit 1
        fi
        grep -q 'no role-tagged flow columns' "$BENCH_DIR/flows_roleless.txt"
        ;;
    *)
        cargo run --quiet --release -p ccsql-cli -- flows "$spec" \
            > "$BENCH_DIR/flows_ok.txt"
        grep -q 'deadlock-free for every N' "$BENCH_DIR/flows_ok.txt"
        ;;
    esac
done
# Protocol: the parameterized verdict must track the assignment (the
# deadlock pre-pass additionally hard-fails on any flows/VCG split),
# and the operational leg must concur: the fixed protocol (V2 channel
# discipline) verifies deadlock-free in the model checker at N=2..5.
cargo run --quiet --release -p ccsql-cli -- flows --protocol --assignment v2 > /dev/null
if cargo run --quiet --release -p ccsql-cli -- flows --protocol --assignment v1 \
    > "$BENCH_DIR/flows_v1.txt" 2>&1; then
    echo "flows missed the V1 Figure-4 cycle" >&2
    exit 1
fi
grep -q 'CCL031' "$BENCH_DIR/flows_v1.txt"
cargo run --quiet --release -p ccsql-cli -- deadlock --assignment v2 > /dev/null
for nodes in 2 3 4 5; do
    cargo run --quiet --release -p ccsql-cli -- mc --nodes "$nodes" --quota 1 \
        > "$BENCH_DIR/mc_flows.txt"
    grep -q 'verified' "$BENCH_DIR/mc_flows.txt" || {
        echo "mc at $nodes node(s) disagrees with the parameterized verdict" >&2
        exit 1
    }
done

echo "==> ccsql flows --json determinism (two runs must be byte-identical)"
cargo run --quiet --release -p ccsql-cli -- flows --protocol --assignment v2 --json \
    > "$BENCH_DIR/flows_j1.json"
cargo run --quiet --release -p ccsql-cli -- flows --protocol --assignment v2 --json \
    > "$BENCH_DIR/flows_j2.json"
diff "$BENCH_DIR/flows_j1.json" "$BENCH_DIR/flows_j2.json"

echo "==> ccsql zoo --quick (protocol x stage matrix: determinism + completeness)"
cargo run --quiet --release -p ccsql-cli -- zoo specs --quick > "$BENCH_DIR/zoo1.jsonl"
cargo run --quiet --release -p ccsql-cli -- zoo specs --quick > "$BENCH_DIR/zoo2.jsonl"
# Two runs must be byte-identical, the expectations (clean packs pass
# everything, seeded-bug packs fail somewhere) must hold, and every
# pack on disk must appear in the matrix.
diff "$BENCH_DIR/zoo1.jsonl" "$BENCH_DIR/zoo2.jsonl"
grep -q 'expectations met' "$BENCH_DIR/zoo1.jsonl"
for spec in specs/*.ccsql; do
    stem=$(basename "$spec" .ccsql)
    grep -q "\"protocol\":\"$stem\"" "$BENCH_DIR/zoo1.jsonl" || {
        echo "zoo matrix is missing $stem" >&2
        exit 1
    }
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all gates passed"
