#!/usr/bin/env sh
# Pre-PR gate: the tier-1 build/test pass plus formatting and lint,
# all fully offline (crates/bench, the only crate with external
# dependencies, is excluded from the workspace).
#
#   sh scripts/verify.sh
#
# Every step must pass; the script stops at the first failure.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace (all crates)"
cargo test -q --workspace

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "verify: all gates passed"
